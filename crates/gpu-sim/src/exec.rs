//! The SIMT execution engine: blocks, warps, lanes, lockstep cost merging.
//!
//! Execution is *orchestrated*: the OpenMP runtime (in `simt-omp-core`)
//! decides which lanes of which warp run which per-lane program, and this
//! engine executes the programs functionally while accounting cycles with
//! SIMT lockstep semantics:
//!
//! * all lanes given to one [`TeamCtx::run_lanes`] call execute *together*
//!   as one warp-synchronous super-step;
//! * issue cycles combine with **max** over lanes — a warp is busy for as
//!   long as its longest-running lane, and lanes that finished early (idle
//!   SIMD lanes, short rows…) still cost their warp the full time. This is
//!   the mechanism behind the paper's "wasted threads" observations (§6.3);
//! * the k-th memory access of every lane is assumed to be the same static
//!   instruction (true for the uniform loop bodies OpenMP `simd` allows), so
//!   the addresses are **coalesced** together into 32-byte sectors;
//! * atomic accesses to the same address within a super-step serialize.
//!
//! Warp-level barriers, block-level barriers and direct runtime charges
//! (state-machine posts, dispatch costs…) are explicit [`TeamCtx`] methods.

use crate::arch::DeviceArch;
use crate::cost::CostModel;
use crate::mem::global::{FallbackRange, GlobalMem, GlobalView};
use crate::mem::pod::DevValue;
use crate::mem::ptr::{DPtr, Slot};
use crate::mem::shared::{SharedMem, SmOff};
use crate::stats::{BlockProfile, RtCounters};

#[derive(Clone, Copy, Debug)]
struct Access {
    addr: u64,
    bytes: u32,
    atomic: bool,
    write: bool,
}

/// How a lane touched a shared-memory slot (feeds the bank-conflict model
/// and the sanitizer's race rules — atomics never race with each other).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SmemKind {
    Read,
    Write,
    Atomic,
}

/// Per-lane cost trace captured while a lane program runs.
#[derive(Default, Debug)]
struct LaneTrace {
    alu: u64,
    smem_ops: u64,
    /// Shared-memory slot indices with an access kind, in program order
    /// (for bank-conflict analysis across lockstep lanes and the
    /// sanitizer).
    smem_slots: Vec<(u32, SmemKind)>,
    accesses: Vec<Access>,
}

/// How an outlined-function dispatch reaches its target (§5.5): through the
/// module's if-cascade at a given position in the linear compare chain, or
/// through the costly indirect-call fallback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchKind {
    /// Matched by the if-cascade after walking `position` compare levels
    /// (position 0 is the first compare in the chain).
    Cascade {
        /// Zero-based position of the matched entry among the module's
        /// cascade-known outlined functions.
        position: u32,
    },
    /// Not visible to the cascade — dispatched via function pointer.
    Indirect,
}

/// Side effects observed while running lanes with the sanitizer attached,
/// accumulated per [`TeamCtx`] and drained with [`TeamCtx::take_observed`].
/// The runtime interpreter diffs these against declared effect footprints.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObservedEffects {
    /// Any plain global-memory write happened.
    pub global_writes: bool,
    /// Any global-memory atomic RMW happened.
    pub global_atomics: bool,
}

impl LaneTrace {
    fn clear(&mut self) {
        self.alu = 0;
        self.smem_ops = 0;
        self.smem_slots.clear();
        self.accesses.clear();
    }
}

/// Where a [`Lane`]'s cost events go: the recording trace used by
/// [`TeamCtx::run_lanes`] (kept byte-for-byte as before), or the online
/// coalescing accumulator of the flat bytecode path, which computes the
/// same per-super-step aggregates without materializing per-lane access
/// lists.
enum LaneSink<'a> {
    Trace(&'a mut LaneTrace),
    Flat(&'a mut FlatAcc),
}

impl LaneSink<'_> {
    #[inline]
    fn alu(&mut self, cycles: u64) {
        match self {
            LaneSink::Trace(t) => t.alu += cycles,
            LaneSink::Flat(a) => a.lane_alu += cycles,
        }
    }

    #[inline]
    fn global(&mut self, addr: u64, bytes: u32, atomic: bool, write: bool) {
        match self {
            LaneSink::Trace(t) => t.accesses.push(Access { addr, bytes, atomic, write }),
            LaneSink::Flat(a) => a.global(addr, bytes, atomic),
        }
    }

    #[inline]
    fn smem(&mut self, slot: u32, kind: SmemKind) {
        match self {
            LaneSink::Trace(t) => {
                t.smem_ops += 1;
                t.smem_slots.push((slot, kind));
            }
            LaneSink::Flat(a) => a.smem(slot),
        }
    }
}

/// One global-memory ordinal of the flat accumulator: the k-th access of
/// every lane in the super-step, reduced to its unique-sector set plus the
/// atomic target addresses (kept with multiplicity for serialization).
#[derive(Default)]
struct OrdAcc {
    sectors: Vec<u64>,
    atomics: Vec<u64>,
    /// Sectors were pushed in ascending order (with adjacent duplicates
    /// skipped), so they are already sorted *and* deduplicated — the common
    /// case for coalesced loops, which skips the commit-time sort entirely.
    sorted: bool,
}

impl OrdAcc {
    #[inline]
    fn push_sector(&mut self, s: u64) {
        match self.sectors.last() {
            Some(&prev) if prev == s => {} // adjacent duplicate
            Some(&prev) => {
                if prev > s {
                    self.sorted = false;
                }
                self.sectors.push(s);
            }
            None => self.sectors.push(s),
        }
    }
}

/// Shared-memory bank-conflict accumulator for one ordinal (the k-th smem
/// access of every lane in a super-step), parameterized by the device's
/// bank count ([`crate::arch::DeviceArch::smem_banks`]). Distinct slots
/// landing in one bank serialize into wavefronts; same-slot accesses
/// broadcast. This is the **single** implementation of the conflict walk —
/// the trace path ([`TeamCtx::commit`]) and the flat path
/// ([`TeamCtx::run_lanes_flat`]) both fold through it, which is what keeps
/// their wavefront counts bit-identical by construction. (The old code
/// duplicated the walk in three places over hard-coded `[_; 32]` arrays,
/// folding wave64 archs into a 32-bank hash, and capped the per-bank depth
/// at 255 via a `u8` `saturating_add`.)
#[derive(Clone, Debug, Default)]
pub struct BankAcc {
    /// Last slot seen per bank (`u32::MAX` = none) — the broadcast filter.
    bank_slots: Vec<u32>,
    /// Serialized wavefronts per bank. `u32`: a deep conflict (every lane
    /// of a wide warp on one bank, ordinal after ordinal) must count
    /// fully, not saturate at 255.
    bank_waves: Vec<u32>,
    worst: u32,
}

impl BankAcc {
    /// Accumulator over `banks` independent banks.
    pub fn new(banks: u32) -> BankAcc {
        assert!(banks >= 1, "a device needs at least one shared-memory bank");
        BankAcc {
            bank_slots: vec![u32::MAX; banks as usize],
            bank_waves: vec![0; banks as usize],
            worst: 0,
        }
    }

    /// Reset for the next ordinal, keeping the bank count.
    pub fn clear(&mut self) {
        self.bank_slots.fill(u32::MAX);
        self.bank_waves.fill(0);
        self.worst = 0;
    }

    /// Fold in one lane's access to an 8-byte slot.
    #[inline]
    pub fn visit(&mut self, slot: u32) {
        let b = (slot as usize) % self.bank_slots.len();
        if self.bank_slots[b] != slot {
            // New distinct slot in this bank: one more wavefront
            // (approximate: tracks the last slot seen per bank).
            self.bank_slots[b] = slot;
            self.bank_waves[b] += 1;
            self.worst = self.worst.max(self.bank_waves[b]);
        }
    }

    /// Wavefronts the deepest bank serializes into (0 if nothing visited).
    pub fn worst(&self) -> u32 {
        self.worst
    }
}

/// Super-step accumulator for [`TeamCtx::run_lanes_flat`]: per-ordinal
/// coalescing state plus running per-lane cursors, producing exactly the
/// aggregates [`TeamCtx::commit`] derives from the recorded traces.
#[derive(Default)]
struct FlatAcc {
    ords: Vec<OrdAcc>,
    smem_ords: Vec<BankAcc>,
    max_alu: u64,
    max_smem_ops: u64,
    max_ord: usize,
    max_smem_ord: usize,
    lane_alu: u64,
    lane_smem_ops: u64,
    lane_ord: usize,
    lane_smem_ord: usize,
    /// `log2(sector_bytes)` — the flat path requires a power-of-two sector.
    sector_shift: u32,
    /// Shared-memory bank count new ordinal accumulators are sized to
    /// ([`crate::arch::DeviceArch::smem_banks`]).
    smem_banks: u32,
}

impl FlatAcc {
    /// Prepare for a new super-step: clear the ordinals the previous step
    /// used (untouched entries are already clear) and reset the maxima.
    fn reset(&mut self, sector_shift: u32, smem_banks: u32) {
        for o in &mut self.ords[..self.max_ord] {
            o.sectors.clear();
            o.atomics.clear();
            o.sorted = true;
        }
        for s in &mut self.smem_ords[..self.max_smem_ord] {
            s.clear();
        }
        self.max_alu = 0;
        self.max_smem_ops = 0;
        self.max_ord = 0;
        self.max_smem_ord = 0;
        self.sector_shift = sector_shift;
        self.smem_banks = smem_banks;
    }

    fn begin_lane(&mut self) {
        self.lane_alu = 0;
        self.lane_smem_ops = 0;
        self.lane_ord = 0;
        self.lane_smem_ord = 0;
    }

    fn end_lane(&mut self) {
        self.max_alu = self.max_alu.max(self.lane_alu);
        self.max_smem_ops = self.max_smem_ops.max(self.lane_smem_ops);
        self.max_ord = self.max_ord.max(self.lane_ord);
        self.max_smem_ord = self.max_smem_ord.max(self.lane_smem_ord);
    }

    #[inline]
    fn global(&mut self, addr: u64, bytes: u32, atomic: bool) {
        let k = self.lane_ord;
        self.lane_ord += 1;
        if k >= self.ords.len() {
            self.ords.push(OrdAcc { sectors: Vec::new(), atomics: Vec::new(), sorted: true });
        }
        let o = &mut self.ords[k];
        let first = addr >> self.sector_shift;
        let last = (addr + bytes as u64 - 1) >> self.sector_shift;
        if first == last {
            // Fast path: the access fits one sector (every aligned element
            // up to sector size does).
            o.push_sector(first);
        } else {
            for s in first..=last {
                o.push_sector(s);
            }
        }
        if atomic {
            o.atomics.push(addr);
        }
    }

    #[inline]
    fn smem(&mut self, slot: u32) {
        self.lane_smem_ops += 1;
        let k = self.lane_smem_ord;
        self.lane_smem_ord += 1;
        if k >= self.smem_ords.len() {
            self.smem_ords.push(BankAcc::new(self.smem_banks));
        }
        self.smem_ords[k].visit(slot);
    }
}

/// Per-warp accounting state, including the warp's L1 window: a
/// direct-mapped map of recently touched sectors. Re-touching a cached
/// sector costs [`CostModel::l1_hit_cycles`] instead of a DRAM sector —
/// this is what lets a thread streaming through its own block of memory
/// (e.g. the serial inner loops of the two-level baselines) avoid paying
/// full DRAM cost for every element of a 32-byte sector.
#[derive(Clone, Debug, Default)]
struct WarpState {
    clock: u64,
    issue: u64,
    sectors: u64,
    dram_sectors: u64,
    smem_ops: u64,
    l1_hits: u64,
    /// L1-hit replay cycles included in `issue` and `clock` that the
    /// hierarchical makespan retires through the LSU pipe instead of the
    /// issue pipe: the whole `line_cycles` charge for a full-line hit
    /// (temporal reuse), all but one `sector_cycles` beat for a
    /// partial-line hit (the sector comes off the in-flight fill).
    /// Misses keep their replay cycles on the warp — they allocate MSHRs
    /// and serialize either way.
    tx: u64,
    /// Full-line L1 hits (subset of `l1_hits`): tag hits on a way whose
    /// entire sector mask is populated.
    full_hits: u64,
    /// Deduplicated sectors touched per ordinal, L1 hits included (LSU
    /// pipe occupancy).
    lsu_sectors: u64,
    /// 4-way set-associative tag store: `l1[set*4..set*4+4]`.
    l1: Vec<u64>,
    /// LRU ages parallel to `l1`.
    l1_age: Vec<u8>,
    /// Per-way sector-validity bitmasks (sectored cache: a line tag can be
    /// present with only some of its sectors fetched).
    l1_mask: Vec<u8>,
}

/// Program-order log of the block's line visits, kept for the launch's
/// deterministic first-touch replay (see `Device::launch`).
///
/// Which *visit* claims a sector's compulsory DRAM fill depends on how
/// blocks interleave, and the 64-byte burst-atom charge is a nonlinear
/// function of that per-visit grouping — so it cannot be computed online
/// without becoming thread-count dependent. Instead every block records
/// `(line, sector-bits first requested by this block in this visit)` in
/// its own execution order; the launch replays the logs in block-index
/// order against one sequential touched-set, which reproduces the
/// `SIMT_SIM_THREADS=1` attribution exactly at any thread count.
///
/// Entries are packed `line << 8 | mask`; the per-block `seen` prefilter
/// keeps the log bounded by the block's distinct (line, sector) footprint.
#[derive(Default)]
pub(crate) struct VisitLog {
    seen: std::collections::HashMap<u64, u8>,
    log: Vec<u64>,
}

impl VisitLog {
    #[inline]
    fn record(&mut self, line: u64, smask: u8) {
        let seen = self.seen.entry(line).or_insert(0);
        let new = smask & !*seen;
        if new != 0 {
            *seen |= new;
            self.log.push((line << 8) | new as u64);
        }
    }

    /// Packed `(line << 8 | mask)` entries in block execution order.
    pub(crate) fn entries(&self) -> &[u64] {
        &self.log
    }
}

/// Execution context handed to a per-lane program: typed access to global
/// and shared memory, with every operation recorded for cost accounting.
pub struct Lane<'a, 'g> {
    global: &'a mut GlobalView<'g>,
    smem: &'a mut SharedMem,
    sink: LaneSink<'a>,
}

impl<'a, 'g> Lane<'a, 'g> {
    /// Charge `cycles` of ALU work.
    #[inline]
    pub fn work(&mut self, cycles: u64) {
        self.sink.alu(cycles);
    }

    /// Load element `idx` relative to `p` from global memory.
    #[inline]
    pub fn read<T: DevValue>(&mut self, p: DPtr<T>, idx: u64) -> T {
        let (addr, v) = self.global.read_at(p, idx);
        self.sink.global(addr, std::mem::size_of::<T>() as u32, false, false);
        v
    }

    /// Store to element `idx` relative to `p` in global memory.
    #[inline]
    pub fn write<T: DevValue>(&mut self, p: DPtr<T>, idx: u64, v: T) {
        let addr = self.global.write_at(p, idx, v);
        self.sink.global(addr, std::mem::size_of::<T>() as u32, false, true);
    }

    /// Atomic `fetch_add` on an `f64` in global memory; returns the old
    /// value. Same-address conflicts within a super-step serialize for cost;
    /// the update itself is genuinely atomic across concurrent blocks.
    #[inline]
    pub fn atomic_add_f64(&mut self, p: DPtr<f64>, idx: u64, v: f64) -> f64 {
        let (addr, old) = self.global.atomic_add_f64_at(p, idx, v);
        self.sink.global(addr, 8, true, true);
        old
    }

    /// Atomic `fetch_add` on a `u64` in global memory; returns the old value.
    #[inline]
    pub fn atomic_add_u64(&mut self, p: DPtr<u64>, idx: u64, v: u64) -> u64 {
        let (addr, old) = self.global.atomic_add_u64_at(p, idx, v);
        self.sink.global(addr, 8, true, true);
        old
    }

    /// Read an 8-byte slot from shared memory.
    #[inline]
    pub fn smem_read_slot(&mut self, off: SmOff, idx: u32) -> Slot {
        self.sink.smem(off.0 + idx, SmemKind::Read);
        self.smem.read_slot(off, idx)
    }

    /// Write an 8-byte slot to shared memory.
    #[inline]
    pub fn smem_write_slot(&mut self, off: SmOff, idx: u32, v: Slot) {
        self.sink.smem(off.0 + idx, SmemKind::Write);
        self.smem.write_slot(off, idx, v);
    }

    /// Read a shared-memory slot as `f64`.
    #[inline]
    pub fn smem_read_f64(&mut self, off: SmOff, idx: u32) -> f64 {
        self.sink.smem(off.0 + idx, SmemKind::Read);
        self.smem.read_f64(off, idx)
    }

    /// Write a shared-memory slot as `f64`.
    #[inline]
    pub fn smem_write_f64(&mut self, off: SmOff, idx: u32, v: f64) {
        self.sink.smem(off.0 + idx, SmemKind::Write);
        self.smem.write_f64(off, idx, v);
    }

    /// Atomic `fetch_add` on a shared-memory slot holding an `f64`; returns
    /// the old value. Atomics to the same slot never race with each other,
    /// but an atomic unsynchronized with a *plain* access to the same slot
    /// is a protocol violation (simtcheck's atomic/plain rule).
    #[inline]
    pub fn smem_atomic_add_f64(&mut self, off: SmOff, idx: u32, v: f64) -> f64 {
        self.sink.smem(off.0 + idx, SmemKind::Atomic);
        let old = self.smem.read_f64(off, idx);
        self.smem.write_f64(off, idx, old + v);
        old
    }
}

/// The per-block execution context: warps, shared memory, a mutable view of
/// global memory, cost model and counters.
///
/// Created by [`crate::launch::Device::launch`] for each block, passed to
/// the kernel entry function.
pub struct TeamCtx<'g> {
    /// Id of this block within the launch grid.
    pub block_id: u32,
    /// Total blocks in the launch grid.
    pub num_blocks: u32,
    nwarps: u32,
    /// This block's shared memory.
    pub smem: SharedMem,
    gview: GlobalView<'g>,
    cost: &'g CostModel,
    arch: &'g DeviceArch,
    warps: Vec<WarpState>,
    /// Runtime-behavior counters for this block.
    pub counters: RtCounters,
    trace_pool: Vec<LaneTrace>,
    scratch_sectors: Vec<u64>,
    scratch_atomic: Vec<u64>,
    /// Per-block L1-missing sectors per L2 bank slice (length =
    /// `arch.cache.l2_banks`), folded by both commit paths.
    l2_bank_sectors: Vec<u64>,
    /// Line-visit log for the launch's deterministic first-touch replay.
    visits: VisitLog,
    flat_acc: FlatAcc,
    /// Reusable bank-conflict accumulator for the trace commit path, sized
    /// to `arch.smem_banks` once at construction.
    smem_bank_acc: BankAcc,
    event_trace: Option<crate::trace::Trace>,
    sanitizer: Option<Box<crate::sanitize::Sanitizer>>,
    observed: ObservedEffects,
}

impl<'g> TeamCtx<'g> {
    /// Create a block context. `nwarps` is the number of warps in the block
    /// (including any extra runtime warp the caller decided to reserve).
    pub fn new(
        block_id: u32,
        num_blocks: u32,
        nwarps: u32,
        smem_bytes: u32,
        global: &'g GlobalMem,
        cost: &'g CostModel,
        arch: &'g DeviceArch,
    ) -> TeamCtx<'g> {
        assert!(nwarps >= 1, "a block needs at least one warp");
        TeamCtx {
            block_id,
            num_blocks,
            nwarps,
            smem: SharedMem::new(smem_bytes),
            gview: global.view(block_id),
            cost,
            arch,
            warps: vec![WarpState::default(); nwarps as usize],
            counters: RtCounters::default(),
            trace_pool: Vec::new(),
            scratch_sectors: Vec::new(),
            scratch_atomic: Vec::new(),
            l2_bank_sectors: vec![0; arch.cache.l2_banks as usize],
            visits: VisitLog::default(),
            flat_acc: FlatAcc::default(),
            smem_bank_acc: BankAcc::new(arch.smem_banks),
            event_trace: None,
            sanitizer: None,
            observed: ObservedEffects::default(),
        }
    }

    /// Attach an event trace (taken over from the device during a traced
    /// launch).
    pub fn attach_trace(&mut self, t: crate::trace::Trace) {
        self.event_trace = Some(t);
    }

    /// Detach the event trace again.
    pub fn detach_trace(&mut self) -> crate::trace::Trace {
        self.event_trace.take().unwrap_or_default()
    }

    /// Attach a simtcheck sanitizer for this block (see
    /// [`crate::sanitize`]). All synchronization events and shared-memory
    /// accesses from here on are validated.
    pub fn attach_sanitizer(&mut self, s: Box<crate::sanitize::Sanitizer>) {
        self.sanitizer = Some(s);
    }

    /// Detach the sanitizer again (e.g. to collect its findings).
    pub fn detach_sanitizer(&mut self) -> Option<Box<crate::sanitize::Sanitizer>> {
        self.sanitizer.take()
    }

    /// Whether a sanitizer is attached (used by the runtime to decide if
    /// protocol metadata is worth emitting).
    pub fn sanitizing(&self) -> bool {
        self.sanitizer.is_some()
    }

    /// Drain the side effects observed since the last call (only tracked
    /// while a sanitizer is attached). The runtime interpreter brackets
    /// footprint-declared outlined calls with this to validate the
    /// declaration against what actually happened.
    pub fn take_observed(&mut self) -> ObservedEffects {
        std::mem::take(&mut self.observed)
    }

    /// Report an externally-detected violation (e.g. a footprint mismatch
    /// found by the runtime interpreter) through the attached sanitizer.
    /// No-op when not sanitizing.
    pub fn report_violation(&mut self, v: crate::sanitize::Violation) {
        if let Some(s) = &mut self.sanitizer {
            s.report_external(v);
        }
    }

    /// Number of warps in this block.
    pub fn nwarps(&self) -> u32 {
        self.nwarps
    }

    /// Lanes per warp on this device.
    pub fn warp_size(&self) -> u32 {
        self.arch.warp_size
    }

    /// Device architecture descriptor.
    pub fn arch(&self) -> &DeviceArch {
        self.arch
    }

    /// Cost model in effect.
    pub fn cost(&self) -> &CostModel {
        self.cost
    }

    /// This block's view of global memory (runtime-internal allocations,
    /// e.g. the sharing-space global fallback, go through it and land in
    /// the block's deterministic arena).
    pub fn global(&mut self) -> &mut GlobalView<'g> {
        &mut self.gview
    }

    /// Shared access to global memory.
    pub fn global_ref(&self) -> &GlobalMem {
        self.gview.mem()
    }

    /// Fallback allocations this block performed, for the launch merge
    /// step's cross-team race analysis.
    pub fn fallback_ranges(&self) -> Vec<FallbackRange> {
        self.gview.fallback_ranges().to_vec()
    }

    /// Current clock of a warp, cycles.
    pub fn warp_clock(&self, warp: u32) -> u64 {
        self.warps[warp as usize].clock
    }

    /// Run a per-lane program on `lanes` of `warp` as one lockstep
    /// super-step: `f` is invoked once per lane (in ascending lane order for
    /// determinism); issue combines with max over lanes, the k-th accesses
    /// of all lanes coalesce together.
    pub fn run_lanes<F>(&mut self, warp: u32, lanes: &[u32], mut f: F)
    where
        F: FnMut(&mut Lane<'_, '_>, u32),
    {
        assert!(warp < self.nwarps, "warp {warp} out of range");
        if lanes.is_empty() {
            return;
        }
        while self.trace_pool.len() < lanes.len() {
            self.trace_pool.push(LaneTrace::default());
        }
        for (i, &lane_id) in lanes.iter().enumerate() {
            debug_assert!(lane_id < self.arch.warp_size);
            let trace = &mut self.trace_pool[i];
            trace.clear();
            let mut lane = Lane {
                global: &mut self.gview,
                smem: &mut self.smem,
                sink: LaneSink::Trace(trace),
            };
            f(&mut lane, lane_id);
        }
        if let Some(mut san) = self.sanitizer.take() {
            for (i, &lane_id) in lanes.iter().enumerate() {
                let tid = warp * self.arch.warp_size + lane_id;
                for &(slot, kind) in &self.trace_pool[i].smem_slots {
                    match kind {
                        SmemKind::Read => san.record_smem(tid, slot, false),
                        SmemKind::Write => san.record_smem(tid, slot, true),
                        SmemKind::Atomic => san.record_smem_atomic(tid, slot),
                    }
                }
                for a in &self.trace_pool[i].accesses {
                    if a.atomic {
                        self.observed.global_atomics = true;
                    } else if a.write {
                        self.observed.global_writes = true;
                    }
                    san.record_global_access(tid, a.addr, a.write);
                }
            }
            self.sanitizer = Some(san);
        }
        self.commit(warp, lanes.len());
    }

    /// [`run_lanes`] for the flat bytecode executor: identical lockstep cost
    /// semantics, but coalescing aggregates are folded online into a
    /// per-ordinal accumulator instead of materializing per-lane access
    /// lists, skipping the trace/commit machinery entirely.
    ///
    /// Delegates to [`run_lanes`] whenever exact trace capture is needed —
    /// sanitizer attached, event trace active, or a cost model whose sector
    /// size is not a power of two — so the fast path never has to replicate
    /// those observers.
    ///
    /// [`run_lanes`]: TeamCtx::run_lanes
    pub fn run_lanes_flat<F>(&mut self, warp: u32, lanes: &[u32], mut f: F)
    where
        F: FnMut(&mut Lane<'_, '_>, u32),
    {
        if self.sanitizer.is_some()
            || self.event_trace.is_some()
            || !self.cost.sector_bytes.is_power_of_two()
        {
            return self.run_lanes(warp, lanes, f);
        }
        assert!(warp < self.nwarps, "warp {warp} out of range");
        if lanes.is_empty() {
            return;
        }
        let shift = self.cost.sector_bytes.trailing_zeros();
        self.flat_acc.reset(shift, self.arch.smem_banks);
        for &lane_id in lanes {
            debug_assert!(lane_id < self.arch.warp_size);
            self.flat_acc.begin_lane();
            let mut lane = Lane {
                global: &mut self.gview,
                smem: &mut self.smem,
                sink: LaneSink::Flat(&mut self.flat_acc),
            };
            f(&mut lane, lane_id);
            self.flat_acc.end_lane();
        }
        self.commit_flat(warp);
    }

    /// Merge the first `n` traces of the pool into `warp`'s accounting.
    fn commit(&mut self, warp: u32, n: usize) {
        let cost = self.cost;
        let mut scratch_sectors = std::mem::take(&mut self.scratch_sectors);
        let mut scratch_atomic = std::mem::take(&mut self.scratch_atomic);
        let traces = &self.trace_pool[..n];

        let max_alu = traces.iter().map(|t| t.alu).max().unwrap_or(0);
        let max_smem = traces.iter().map(|t| t.smem_ops).max().unwrap_or(0);
        let max_ord = traces.iter().map(|t| t.accesses.len()).max().unwrap_or(0);

        // Shared memory: the k-th smem access of all lanes is one
        // instruction; distinct slots landing in the same bank (of the
        // arch's `smem_banks`) serialize into wavefronts, same-slot
        // accesses broadcast — the [`BankAcc`] walk, shared with the flat
        // path.
        let max_smem_ord = traces.iter().map(|t| t.smem_slots.len()).max().unwrap_or(0);
        let mut bank_acc = std::mem::take(&mut self.smem_bank_acc);
        let mut smem_wavefronts = 0u64;
        for k in 0..max_smem_ord {
            bank_acc.clear();
            for t in traces {
                let Some(&(slot, _)) = t.smem_slots.get(k) else { continue };
                bank_acc.visit(slot);
            }
            smem_wavefronts += bank_acc.worst().max(1) as u64;
        }
        self.smem_bank_acc = bank_acc;

        let mut clock_add = max_alu + smem_wavefronts * cost.smem_cycles;
        let mut issue_add = clock_add;
        let mut sectors_add = 0u64;
        let mut hits_add = 0u64;
        let mut dram_add = 0u64;
        let mut lines_add = 0u64;
        let mut tx_add = 0u64;
        let mut full_hits_add = 0u64;
        let mut lsu_add = 0u64;
        // Lazily initialize this warp's L1 window (4-way set associative,
        // line-granular tags).
        if self.warps[warp as usize].l1.is_empty() && cost.l1_lines >= 4 {
            self.warps[warp as usize].l1 = vec![u64::MAX; cost.l1_lines as usize];
            self.warps[warp as usize].l1_age = vec![0; cost.l1_lines as usize];
            self.warps[warp as usize].l1_mask = vec![0; cost.l1_lines as usize];
        }
        let mut l1 = std::mem::take(&mut self.warps[warp as usize].l1);
        let mut l1_age = std::mem::take(&mut self.warps[warp as usize].l1_age);
        let mut l1_mask = std::mem::take(&mut self.warps[warp as usize].l1_mask);
        let mut banks = std::mem::take(&mut self.l2_bank_sectors);
        let mut visits = std::mem::take(&mut self.visits);
        let nsets = l1.len() / 4;

        let spl = (cost.line_bytes / cost.sector_bytes).max(1) as u64;
        for k in 0..max_ord {
            scratch_sectors.clear();
            scratch_atomic.clear();
            let mut any = false;
            for t in traces {
                let Some(a) = t.accesses.get(k) else { continue };
                any = true;
                let sb = cost.sector_bytes as u64;
                let first = a.addr / sb;
                let last = (a.addr + a.bytes as u64 - 1) / sb;
                for s in first..=last {
                    scratch_sectors.push(s);
                }
                if a.atomic {
                    scratch_atomic.push(a.addr);
                }
            }
            if !any {
                continue;
            }
            scratch_sectors.sort_unstable();
            scratch_sectors.dedup();
            let (lines, sectors, hits, full) = line_walk(
                &scratch_sectors,
                spl,
                nsets,
                &mut l1,
                &mut l1_age,
                &mut l1_mask,
                &self.gview,
                &mut dram_add,
                &mut visits,
                &mut banks,
            );
            let misses = sectors;
            let tx = lines * cost.line_cycles + sectors * cost.sector_cycles;
            let c = tx + atomic_serialize_cycles(&mut scratch_atomic, cost);
            issue_add += c;
            clock_add += c + if misses > 0 { cost.exposed_latency } else { 0 };
            sectors_add += sectors;
            hits_add += hits;
            lines_add += lines;
            tx_add += hit_replay_offload(hits, full, cost);
            full_hits_add += full;
            lsu_add += scratch_sectors.len() as u64;
        }

        self.scratch_sectors = scratch_sectors;
        self.scratch_atomic = scratch_atomic;
        self.l2_bank_sectors = banks;
        self.visits = visits;
        if let Some(t) = &mut self.event_trace {
            t.push(crate::trace::TraceEvent::SuperStep {
                block: self.block_id,
                warp,
                lanes: n as u32,
                issue: issue_add,
                lines: lines_add,
            });
        }
        let w = &mut self.warps[warp as usize];
        w.l1 = l1;
        w.l1_age = l1_age;
        w.l1_mask = l1_mask;
        w.clock += clock_add;
        w.issue += issue_add;
        w.sectors += sectors_add;
        w.dram_sectors += dram_add;
        w.smem_ops += max_smem;
        w.l1_hits += hits_add;
        w.tx += tx_add;
        w.full_hits += full_hits_add;
        w.lsu_sectors += lsu_add;
        let _ = max_smem;
    }

    /// [`commit`]-equivalent for the flat accumulator: derives the exact
    /// same per-super-step charges from [`FlatAcc`]'s pre-coalesced state.
    /// No event-trace branch — [`run_lanes_flat`] delegates to the trace
    /// path whenever a trace or sanitizer is attached.
    ///
    /// [`commit`]: TeamCtx::commit
    /// [`run_lanes_flat`]: TeamCtx::run_lanes_flat
    fn commit_flat(&mut self, warp: u32) {
        let cost = self.cost;
        let mut acc = std::mem::take(&mut self.flat_acc);

        let mut smem_wavefronts = 0u64;
        for s in &acc.smem_ords[..acc.max_smem_ord] {
            smem_wavefronts += s.worst().max(1) as u64;
        }

        let mut clock_add = acc.max_alu + smem_wavefronts * cost.smem_cycles;
        let mut issue_add = clock_add;
        let mut sectors_add = 0u64;
        let mut hits_add = 0u64;
        let mut dram_add = 0u64;
        let mut tx_add = 0u64;
        let mut full_hits_add = 0u64;
        let mut lsu_add = 0u64;
        if self.warps[warp as usize].l1.is_empty() && cost.l1_lines >= 4 {
            self.warps[warp as usize].l1 = vec![u64::MAX; cost.l1_lines as usize];
            self.warps[warp as usize].l1_age = vec![0; cost.l1_lines as usize];
            self.warps[warp as usize].l1_mask = vec![0; cost.l1_lines as usize];
        }
        let mut l1 = std::mem::take(&mut self.warps[warp as usize].l1);
        let mut l1_age = std::mem::take(&mut self.warps[warp as usize].l1_age);
        let mut l1_mask = std::mem::take(&mut self.warps[warp as usize].l1_mask);
        let mut banks = std::mem::take(&mut self.l2_bank_sectors);
        let mut visits = std::mem::take(&mut self.visits);
        let nsets = l1.len() / 4;
        let spl = (cost.line_bytes / cost.sector_bytes).max(1) as u64;

        for o in &mut acc.ords[..acc.max_ord] {
            if o.sectors.is_empty() && o.atomics.is_empty() {
                continue;
            }
            if !o.sorted {
                o.sectors.sort_unstable();
                o.sectors.dedup();
            }
            let (lines, sectors, hits, full) = line_walk(
                &o.sectors,
                spl,
                nsets,
                &mut l1,
                &mut l1_age,
                &mut l1_mask,
                &self.gview,
                &mut dram_add,
                &mut visits,
                &mut banks,
            );
            let misses = sectors;
            let tx = lines * cost.line_cycles + sectors * cost.sector_cycles;
            let c = tx + atomic_serialize_cycles(&mut o.atomics, cost);
            issue_add += c;
            clock_add += c + if misses > 0 { cost.exposed_latency } else { 0 };
            sectors_add += sectors;
            hits_add += hits;
            tx_add += hit_replay_offload(hits, full, cost);
            full_hits_add += full;
            lsu_add += o.sectors.len() as u64;
        }

        let w = &mut self.warps[warp as usize];
        w.l1 = l1;
        w.l1_age = l1_age;
        w.l1_mask = l1_mask;
        w.clock += clock_add;
        w.issue += issue_add;
        w.sectors += sectors_add;
        w.dram_sectors += dram_add;
        w.smem_ops += acc.max_smem_ops;
        w.l1_hits += hits_add;
        w.tx += tx_add;
        w.full_hits += full_hits_add;
        w.lsu_sectors += lsu_add;
        self.l2_bank_sectors = banks;
        self.visits = visits;
        self.flat_acc = acc;
    }

    /// Charge plain ALU cycles to a warp (runtime-internal work).
    pub fn charge_alu(&mut self, warp: u32, cycles: u64) {
        let w = &mut self.warps[warp as usize];
        w.clock += cycles;
        w.issue += cycles;
    }

    /// Charge `n` shared-memory operations to a warp (state posts, argument
    /// staging in the sharing space…).
    pub fn charge_smem_ops(&mut self, warp: u32, n: u64) {
        let c = n * self.cost.smem_cycles;
        let w = &mut self.warps[warp as usize];
        w.clock += c;
        w.issue += c;
        w.smem_ops += n;
    }

    /// Warp-level barrier over all lanes of `warp`. Lanes of a warp share
    /// one clock, so this charges the fixed synchronization cost.
    pub fn warp_sync(&mut self, warp: u32) {
        if let Some(t) = &mut self.event_trace {
            t.push(crate::trace::TraceEvent::WarpSync { block: self.block_id, warp });
        }
        if let Some(s) = &mut self.sanitizer {
            s.on_warp_sync(warp);
        }
        self.counters.warp_syncs += 1;
        let c = self.cost.warp_sync_cycles;
        let w = &mut self.warps[warp as usize];
        w.clock += c;
        w.issue += c;
    }

    /// Masked warp-level barrier (`synchronizeWarp(simdmask())`, §5.1):
    /// `required` is the mask the barrier waits for, `arrived` the lanes
    /// the caller can prove reached it. Costs the same as [`warp_sync`];
    /// the distinction feeds the sanitizer, which reports divergence when
    /// `arrived` misses required lanes and only advances the participants'
    /// synchronization epochs.
    ///
    /// [`warp_sync`]: TeamCtx::warp_sync
    pub fn warp_sync_masked(
        &mut self,
        warp: u32,
        required: crate::mask::LaneMask,
        arrived: crate::mask::LaneMask,
    ) {
        if let Some(t) = &mut self.event_trace {
            t.push(crate::trace::TraceEvent::WarpSync { block: self.block_id, warp });
        }
        if let Some(s) = &mut self.sanitizer {
            s.on_warp_sync_masked(warp, required, arrived);
        }
        self.counters.warp_syncs += 1;
        let c = self.cost.warp_sync_cycles;
        let w = &mut self.warps[warp as usize];
        w.clock += c;
        w.issue += c;
    }

    /// Announce that `warp` reaches the next [`block_barrier`]. Purely
    /// sanitizer metadata (no cost): if at least one warp announces, the
    /// sanitizer requires all of them to.
    ///
    /// [`block_barrier`]: TeamCtx::block_barrier
    pub fn barrier_arrive(&mut self, warp: u32) {
        if let Some(s) = &mut self.sanitizer {
            s.barrier_arrive(warp);
        }
    }

    /// Declare the sharing-space layout of the current parallel region to
    /// the sanitizer (no cost, no-op when not sanitizing).
    pub fn declare_sharing(&mut self, layout: crate::sanitize::SharingLayout) {
        if let Some(s) = &mut self.sanitizer {
            s.declare_sharing(layout);
        }
    }

    /// Block-level barrier over all warps of the team: clocks join at the
    /// maximum, plus the barrier cost.
    pub fn block_barrier(&mut self) {
        if let Some(t) = &mut self.event_trace {
            t.push(crate::trace::TraceEvent::BlockBarrier { block: self.block_id });
        }
        if let Some(s) = &mut self.sanitizer {
            s.on_block_barrier();
        }
        self.counters.block_barriers += 1;
        let m = self.warps.iter().map(|w| w.clock).max().unwrap_or(0);
        let c = self.cost.block_barrier_cycles;
        for w in &mut self.warps {
            w.clock = m + c;
            w.issue += c;
        }
    }

    /// Charge the dispatch of an outlined function: through the if-cascade
    /// of known regions, or the indirect-call fallback (§5.5).
    ///
    /// The cascade is a linear compare+branch chain, so a known region pays
    /// for every level walked before its match:
    /// `cascade_dispatch_cycles + position × cascade_level_cycles`. Deep
    /// enough in a large registry this overtakes the flat
    /// `indirect_call_cycles` — the trade-off the §5.5 heuristic accepts.
    pub fn charge_dispatch(&mut self, warp: u32, kind: DispatchKind) {
        if let Some(t) = &mut self.event_trace {
            t.push(crate::trace::TraceEvent::Dispatch {
                block: self.block_id,
                warp,
                cascade: matches!(kind, DispatchKind::Cascade { .. }),
            });
        }
        let c = match kind {
            DispatchKind::Cascade { position } => {
                self.counters.cascade_dispatches += 1;
                self.cost.cascade_dispatch_cycles + position as u64 * self.cost.cascade_level_cycles
            }
            DispatchKind::Indirect => {
                self.counters.indirect_calls += 1;
                self.cost.indirect_call_cycles
            }
        };
        self.charge_alu(warp, c);
    }

    /// Charge a global-memory fallback allocation for the sharing space
    /// (§5.3.1) and count it.
    pub fn charge_global_alloc(&mut self, warp: u32) {
        if let Some(t) = &mut self.event_trace {
            t.push(crate::trace::TraceEvent::GlobalAlloc { block: self.block_id, warp });
        }
        if let Some(s) = &mut self.sanitizer {
            s.on_fallback_alloc();
        }
        self.counters.sharing_global_fallbacks += 1;
        let c = self.cost.global_alloc_cycles;
        self.charge_alu(warp, c);
    }

    /// Free a sharing-space global fallback allocation (the paper frees
    /// them at the end of every parallel region, §5.3.1). The sanitizer
    /// balances these against [`charge_global_alloc`] to find leaks.
    ///
    /// [`charge_global_alloc`]: TeamCtx::charge_global_alloc
    pub fn free_shared_fallback<T: DevValue>(&mut self, p: DPtr<T>) {
        if let Some(s) = &mut self.sanitizer {
            s.on_fallback_free();
        }
        self.gview.free(p);
    }

    /// Allocate a zero-initialized sharing-space fallback segment in this
    /// block's global-memory arena, charging [`charge_global_alloc`] and
    /// registering the range for the cross-team race analysis. Pair with
    /// [`free_shared_fallback`] at the end of the parallel region.
    ///
    /// [`charge_global_alloc`]: TeamCtx::charge_global_alloc
    /// [`free_shared_fallback`]: TeamCtx::free_shared_fallback
    pub fn alloc_shared_fallback<T: DevValue + Default>(&mut self, warp: u32, n: usize) -> DPtr<T> {
        self.charge_global_alloc(warp);
        self.gview.alloc_zeroed(n)
    }

    /// Take the block's line-visit log for the launch's deterministic
    /// first-touch replay (leaves an empty log behind).
    pub(crate) fn take_visits(&mut self) -> VisitLog {
        std::mem::take(&mut self.visits)
    }

    /// Finish the block: produce its resource profile. `threads` and
    /// `smem_bytes` are the occupancy inputs recorded by the launch.
    /// `dram_atoms` is left at zero here — burst-atom attribution depends
    /// on cross-block first-touch order, so the launch fills it during the
    /// block-index-order replay of [`Self::take_visits`] logs.
    pub fn finish(self, threads: u32, smem_bytes: u32) -> (BlockProfile, RtCounters) {
        let profile = BlockProfile {
            cycles: self.warps.iter().map(|w| w.clock).max().unwrap_or(0),
            issue: self.warps.iter().map(|w| w.issue).sum(),
            sectors: self.warps.iter().map(|w| w.sectors).sum(),
            dram_sectors: self.warps.iter().map(|w| w.dram_sectors).sum(),
            dram_atoms: 0,
            smem_ops: self.warps.iter().map(|w| w.smem_ops).sum(),
            l1_hits: self.warps.iter().map(|w| w.l1_hits).sum(),
            l1_full_hits: self.warps.iter().map(|w| w.full_hits).sum(),
            tx_cycles: self.warps.iter().map(|w| w.tx).sum(),
            lsu_sectors: self.warps.iter().map(|w| w.lsu_sectors).sum(),
            resid_cycles: self
                .warps
                .iter()
                .map(|w| w.clock.saturating_sub(w.tx))
                .max()
                .unwrap_or(0),
            l2_bank_sectors: self.l2_bank_sectors,
            threads,
            smem_bytes,
        };
        (profile, self.counters)
    }
}

/// Replay cycles of an ordinal's L1 hits that the hierarchical makespan
/// may retire through the LSU pipe instead of the issue pipe: the full
/// `line_cycles` charge for a full-line hit (the data is entirely L1
/// resident), and all but one `sector_cycles` beat for a partial-line hit
/// — its sector drains off the in-flight fill buffer at sector cost on
/// the issue path, while the fill's bandwidth cost is carried by the DRAM
/// burst wall. Both engines bank this identically (it is pure arithmetic
/// over `line_walk`'s counts), so the oracle contract extends to it.
#[inline]
fn hit_replay_offload(hits: u64, full_hits: u64, cost: &CostModel) -> u64 {
    let partial = hits - full_hits;
    full_hits * cost.line_cycles + partial * cost.line_cycles.saturating_sub(cost.sector_cycles)
}

/// Number of 64-byte DRAM burst atoms (pairs of adjacent 32-byte sectors)
/// a fill's sector mask occupies — the HBM minimum-access-granularity
/// rule: a single-sector fill still spends a whole atom of bandwidth.
#[inline]
pub(crate) fn burst_atoms(mask: u8) -> u64 {
    ((mask | (mask >> 1)) & 0b0101_0101).count_ones() as u64
}

/// Walk one ordinal's unique, sorted sector set grouped by cache line:
/// each distinct line is one LSU transaction; a line missing the warp's L1
/// window (4-way LRU, line tags, sectored validity) sends its
/// not-yet-fetched sectors to DRAM. Returns `(lines, dram-bound sectors,
/// line hits, full-line hits)` — a *hit* is a tag hit with every requested
/// sector already valid; it is a *full-line* hit when the way's entire
/// sector mask is populated (temporal reuse of a completed fill, as
/// opposed to re-touching a sector of a line whose fill is still in
/// progress). Bumps `dram_add` for first-touched (compulsory) sectors,
/// records the visit in `visits` for the launch's deterministic
/// burst-atom replay (see [`VisitLog`]), and attributes every L1-missing
/// sector to its L2 bank slice in `banks` (no-op when `banks` is empty).
///
/// Shared by [`TeamCtx::commit`] and [`TeamCtx::commit_flat`] so the two
/// execution engines agree on the memory model by construction — including
/// the LRU victim rule (*last* max-age way wins ties, per `max_by_key`).
#[allow(clippy::too_many_arguments)]
fn line_walk(
    sectors: &[u64],
    spl: u64,
    nsets: usize,
    l1: &mut [u64],
    l1_age: &mut [u8],
    l1_mask: &mut [u8],
    gview: &GlobalView<'_>,
    dram_add: &mut u64,
    visits: &mut VisitLog,
    banks: &mut [u64],
) -> (u64, u64, u64, u64) {
    let mut dram_sectors = 0u64;
    let mut lines = 0u64;
    let mut hits = 0u64;
    let mut full_hits = 0u64;
    let full_line_mask = ((1u16 << spl.min(8)) - 1) as u8;
    let mut i = 0usize;
    while i < sectors.len() {
        let line = sectors[i] / spl;
        let mut smask = 0u8;
        while i < sectors.len() && sectors[i] / spl == line {
            let bit = 1u8 << (sectors[i] % spl).min(7);
            if gview.first_touch(sectors[i]) {
                *dram_add += 1;
            }
            smask |= bit;
            i += 1;
        }
        visits.record(line, smask);
        lines += 1;
        if nsets == 0 {
            dram_sectors += smask.count_ones() as u64;
            bank_missing_sectors(smask, line, spl, banks);
            continue;
        }
        // Fibonacci-hash the set index so power-of-two array strides do
        // not alias into a handful of sets.
        let h = line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        let set = (h % nsets as u64) as usize * 4;
        let ways = &mut l1[set..set + 4];
        let ages = &mut l1_age[set..set + 4];
        let masks = &mut l1_mask[set..set + 4];
        if let Some(w) = ways.iter().position(|&t| t == line) {
            // Tag hit: only sectors not yet fetched cost DRAM traffic
            // (sectored cache).
            let new = smask & !masks[w];
            if new == 0 {
                hits += 1;
                if masks[w] == full_line_mask {
                    full_hits += 1;
                }
            } else {
                dram_sectors += new.count_ones() as u64;
                bank_missing_sectors(new, line, spl, banks);
                masks[w] |= new;
            }
            ages[w] = 0;
            for (k, a) in ages.iter_mut().enumerate() {
                if k != w {
                    *a = a.saturating_add(1);
                }
            }
        } else {
            dram_sectors += smask.count_ones() as u64;
            bank_missing_sectors(smask, line, spl, banks);
            let victim =
                ages.iter().enumerate().max_by_key(|(_, &a)| a).map(|(k, _)| k).unwrap_or(0);
            ways[victim] = line;
            ages[victim] = 0;
            masks[victim] = smask;
            for (k, a) in ages.iter_mut().enumerate() {
                if k != victim {
                    *a = a.saturating_add(1);
                }
            }
        }
    }
    (lines, dram_sectors, hits, full_hits)
}

/// Attribute each set bit of `mask` (an L1-missing sector within `line`)
/// to its L2 bank slice. Bank counts therefore sum to exactly the
/// L1-missing sector total, which is what the hierarchical makespan's
/// per-bank L2 roof consumes.
#[inline]
fn bank_missing_sectors(mask: u8, line: u64, spl: u64, banks: &mut [u64]) {
    if banks.is_empty() {
        return;
    }
    let n = banks.len() as u32;
    let mut m = mask;
    while m != 0 {
        let bit = m.trailing_zeros() as u64;
        m &= m - 1;
        banks[crate::mem::hier::l2_bank_of(line * spl + bit, n) as usize] += 1;
    }
}

/// Serialization cost of one ordinal's atomic accesses: the max same-address
/// multiplicity determines how many conflict rounds the warp pays. Zero when
/// the ordinal had no atomics. Sorts `atomics` in place.
fn atomic_serialize_cycles(atomics: &mut [u64], cost: &CostModel) -> u64 {
    if atomics.is_empty() {
        return 0;
    }
    atomics.sort_unstable();
    let mut max_mult = 1u64;
    let mut run = 1u64;
    for w in atomics.windows(2) {
        if w[0] == w[1] {
            run += 1;
            max_mult = max_mult.max(run);
        } else {
            run = 1;
        }
    }
    cost.atomic_cycles + (max_mult - 1) * cost.atomic_conflict_cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::DeviceArch;

    fn setup() -> (GlobalMem, CostModel, DeviceArch) {
        (GlobalMem::new(), CostModel::default(), DeviceArch::a100())
    }

    fn ctx<'g>(
        g: &'g mut GlobalMem,
        c: &'g CostModel,
        a: &'g DeviceArch,
        nwarps: u32,
    ) -> TeamCtx<'g> {
        TeamCtx::new(0, 1, nwarps, 4096, g, c, a)
    }

    #[test]
    fn lockstep_issue_is_max_over_lanes() {
        let (mut g, c, a) = setup();
        let mut t = ctx(&mut g, &c, &a, 1);
        // Lane 0 works 100 cycles, lane 1 works 10: warp pays 100.
        t.run_lanes(0, &[0, 1], |lane, id| {
            lane.work(if id == 0 { 100 } else { 10 });
        });
        assert_eq!(t.warp_clock(0), 100);
    }

    #[test]
    fn coalesced_loads_share_sectors() {
        let (mut g, c, a) = setup();
        let p = g.alloc_zeroed::<f64>(64);
        let mut t = ctx(&mut g, &c, &a, 1);
        // 32 lanes load 32 consecutive f64 = 256 bytes = 8 sectors.
        let lanes: Vec<u32> = (0..32).collect();
        t.run_lanes(0, &lanes, |lane, id| {
            lane.read(p, id as u64);
        });
        let (prof, _) = t.finish(32, 0);
        assert_eq!(prof.sectors, 8);
    }

    #[test]
    fn strided_loads_cost_more_sectors() {
        let (mut g, c, a) = setup();
        let p = g.alloc_zeroed::<f64>(32 * 8);
        let mut t = ctx(&mut g, &c, &a, 1);
        // Stride-8 f64 accesses: every lane in its own sector.
        let lanes: Vec<u32> = (0..32).collect();
        t.run_lanes(0, &lanes, |lane, id| {
            lane.read(p, id as u64 * 8);
        });
        let (prof, _) = t.finish(32, 0);
        assert_eq!(prof.sectors, 32);
    }

    #[test]
    fn accesses_merge_by_ordinal_across_iterations() {
        let (mut g, c, a) = setup();
        let p = g.alloc_zeroed::<f64>(256);
        let mut t = ctx(&mut g, &c, &a, 1);
        // Each of 4 lanes makes 2 consecutive-coalescing accesses.
        t.run_lanes(0, &[0, 1, 2, 3], |lane, id| {
            lane.read(p, id as u64); // ordinal 0: 4 * 8B in one sector
            lane.read(p, 128 + id as u64); // ordinal 1: one sector
        });
        let (prof, _) = t.finish(32, 0);
        assert_eq!(prof.sectors, 2);
    }

    #[test]
    fn atomic_same_address_serializes() {
        let (g, c, a) = setup();
        let p = g.alloc_zeroed::<f64>(4);
        let mut t0 = TeamCtx::new(0, 1, 1, 0, &g, &c, &a);
        // 8 lanes atomically add to the SAME element.
        let lanes: Vec<u32> = (0..8).collect();
        t0.run_lanes(0, &lanes, |lane, _| {
            lane.atomic_add_f64(p, 0, 1.0);
        });
        let same_clock = t0.warp_clock(0);
        let (_, _) = t0.finish(32, 0);

        let g2 = GlobalMem::new();
        let q = g2.alloc_zeroed::<f64>(8);
        let mut t1 = TeamCtx::new(0, 1, 1, 0, &g2, &c, &a);
        // 8 lanes add to DIFFERENT elements.
        t1.run_lanes(0, &lanes, |lane, id| {
            lane.atomic_add_f64(q, id as u64, 1.0);
        });
        let diff_clock = t1.warp_clock(0);
        assert!(
            same_clock > diff_clock,
            "same-address atomics ({same_clock}) should cost more than \
             spread atomics ({diff_clock})"
        );
        // And the value is correct.
        assert_eq!(g.read(p, 0), 8.0);
    }

    #[test]
    fn atomic_value_semantics() {
        let (mut g, c, a) = setup();
        let p = g.alloc_zeroed::<f64>(1);
        let pu = g.alloc_zeroed::<u64>(1);
        let mut t = ctx(&mut g, &c, &a, 1);
        t.run_lanes(0, &[0, 1, 2], |lane, id| {
            lane.atomic_add_f64(p, 0, (id + 1) as f64);
            lane.atomic_add_u64(pu, 0, 10);
        });
        drop(t);
        assert_eq!(g.read(p, 0), 6.0);
        assert_eq!(g.read(pu, 0), 30);
    }

    #[test]
    fn block_barrier_joins_clocks_at_max() {
        let (mut g, c, a) = setup();
        let mut t = ctx(&mut g, &c, &a, 3);
        t.charge_alu(0, 50);
        t.charge_alu(1, 500);
        t.charge_alu(2, 5);
        t.block_barrier();
        for w in 0..3 {
            assert_eq!(t.warp_clock(w), 500 + c.block_barrier_cycles);
        }
        assert_eq!(t.counters.block_barriers, 1);
    }

    #[test]
    fn warp_sync_charges_fixed_cost() {
        let (mut g, c, a) = setup();
        let mut t = ctx(&mut g, &c, &a, 2);
        t.warp_sync(1);
        assert_eq!(t.warp_clock(1), c.warp_sync_cycles);
        assert_eq!(t.warp_clock(0), 0);
        assert_eq!(t.counters.warp_syncs, 1);
    }

    #[test]
    fn dispatch_costs_differ() {
        let (mut g, c, a) = setup();
        let mut t = ctx(&mut g, &c, &a, 1);
        t.charge_dispatch(0, DispatchKind::Cascade { position: 0 });
        let after_cascade = t.warp_clock(0);
        t.charge_dispatch(0, DispatchKind::Indirect);
        let after_indirect = t.warp_clock(0) - after_cascade;
        assert!(after_indirect > after_cascade);
        assert_eq!(t.counters.cascade_dispatches, 1);
        assert_eq!(t.counters.indirect_calls, 1);
        assert_eq!(after_cascade, c.cascade_dispatch_cycles);
    }

    #[test]
    fn cascade_dispatch_cost_scales_with_position() {
        // §5.5 regression: the cascade is a linear compare chain, so a deep
        // match must cost more than a shallow one, and past a threshold
        // position the indirect call must win.
        let (mut g, c, a) = setup();
        let cost_at = |g: &mut GlobalMem, pos: u32| {
            let mut t = ctx(g, &c, &a, 1);
            t.charge_dispatch(0, DispatchKind::Cascade { position: pos });
            t.warp_clock(0)
        };
        let shallow = cost_at(&mut g, 0);
        let mid = cost_at(&mut g, 4);
        let deep = cost_at(&mut g, 32);
        assert!(shallow < mid && mid < deep, "cost must grow with depth");
        assert_eq!(mid, c.cascade_dispatch_cycles + 4 * c.cascade_level_cycles);
        let mut t = ctx(&mut g, &c, &a, 1);
        t.charge_dispatch(0, DispatchKind::Indirect);
        let indirect = t.warp_clock(0);
        assert!(shallow < indirect, "early cascade matches beat the pointer");
        assert!(deep > indirect, "deep cascade matches lose to the pointer");
    }

    #[test]
    fn smem_ops_through_lane_are_counted() {
        let (mut g, c, a) = setup();
        let mut t = ctx(&mut g, &c, &a, 1);
        let off = t.smem.alloc(64).unwrap();
        t.run_lanes(0, &[0, 1], |lane, id| {
            lane.smem_write_f64(off, id, id as f64 + 1.0);
        });
        let read_back = t.smem.read_f64(off, 1);
        assert_eq!(read_back, 2.0);
        let (prof, _) = t.finish(32, 4096);
        assert_eq!(prof.smem_ops, 1); // max over lanes, lockstep
    }

    #[test]
    fn finish_aggregates_warps() {
        let (mut g, c, a) = setup();
        let mut t = ctx(&mut g, &c, &a, 2);
        t.charge_alu(0, 10);
        t.charge_alu(1, 30);
        let (prof, _) = t.finish(64, 2048);
        assert_eq!(prof.cycles, 30);
        assert_eq!(prof.issue, 40);
        assert_eq!(prof.threads, 64);
        assert_eq!(prof.smem_bytes, 2048);
    }

    #[test]
    fn empty_lanes_is_noop() {
        let (mut g, c, a) = setup();
        let mut t = ctx(&mut g, &c, &a, 1);
        t.run_lanes(0, &[], |_, _| panic!("must not run"));
        assert_eq!(t.warp_clock(0), 0);
    }

    /// Run the same lane program through `run_lanes` and `run_lanes_flat`
    /// on identical fresh contexts and assert the profiles match exactly.
    fn assert_flat_matches<F>(nwarps: u32, steps: &[(u32, Vec<u32>)], build: F)
    where
        F: Fn(&GlobalMem) -> Box<dyn Fn(&mut Lane<'_, '_>, u32)>,
    {
        let c = CostModel::default();
        let a = DeviceArch::a100();
        let run = |flat: bool| {
            let g = GlobalMem::new();
            let f = build(&g);
            let mut t = TeamCtx::new(0, 1, nwarps, 4096, &g, &c, &a);
            let _ = t.smem.alloc(512);
            for (warp, lanes) in steps {
                if flat {
                    t.run_lanes_flat(*warp, lanes, |lane, id| f(lane, id));
                } else {
                    t.run_lanes(*warp, lanes, |lane, id| f(lane, id));
                }
            }
            t.finish(nwarps * 32, 4096)
        };
        let (tree, tc) = run(false);
        let (flat, fc) = run(true);
        assert_eq!(tree, flat, "profiles diverged");
        assert_eq!(tc, fc, "counters diverged");
    }

    #[test]
    fn flat_matches_tree_on_mixed_access_patterns() {
        // Coalesced + strided + ragged lane participation + multi-ordinal.
        assert_flat_matches(2, &[(0, (0..32).collect()), (1, (0..7).collect())], |g| {
            let p = g.alloc_zeroed::<f64>(4096);
            Box::new(move |lane, id| {
                lane.work(3 + id as u64 % 5);
                lane.read(p, id as u64); // coalesced
                lane.read(p, id as u64 * 9 + 1); // strided
                if id % 3 == 0 {
                    lane.write(p, 2048 + id as u64, 1.0); // divergent ordinal
                }
            })
        });
    }

    #[test]
    fn flat_matches_tree_on_unsorted_and_duplicate_sectors() {
        // Descending addresses force the sort path; shared sectors dedup.
        assert_flat_matches(1, &[(0, (0..16).collect())], |g| {
            let p = g.alloc_zeroed::<f64>(1024);
            Box::new(move |lane, id| {
                lane.read(p, 600 - id as u64 * 16); // descending, unsorted
                lane.read(p, (id as u64 / 4) * 4); // 4 lanes share a sector
            })
        });
    }

    #[test]
    fn flat_matches_tree_on_atomics() {
        assert_flat_matches(1, &[(0, (0..8).collect()), (0, (0..8).collect())], |g| {
            let p = g.alloc_zeroed::<f64>(64);
            let u = g.alloc_zeroed::<u64>(64);
            Box::new(move |lane, id| {
                lane.atomic_add_f64(p, 0, 1.0); // full conflict
                lane.atomic_add_u64(u, id as u64 % 3, 1); // partial conflict
            })
        });
    }

    #[test]
    fn flat_matches_tree_on_smem_bank_conflicts() {
        assert_flat_matches(1, &[(0, (0..32).collect())], |g| {
            let _ = g;
            Box::new(move |lane, id| {
                let off = SmOff(0);
                lane.smem_write_f64(off, id * 2, id as f64); // 2-way conflict
                lane.smem_read_f64(off, 0); // broadcast
                if id < 5 {
                    lane.smem_atomic_add_f64(off, 40, 1.0);
                }
            })
        });
    }

    #[test]
    fn flat_matches_tree_on_l1_reuse() {
        // Re-reading the same block of memory exercises tag hits, sectored
        // validity masks, and LRU aging identically in both engines.
        assert_flat_matches(1, &[(0, (0..32).collect()), (0, (0..32).collect())], |g| {
            let p = g.alloc_zeroed::<f64>(8192);
            Box::new(move |lane, id| {
                for rep in 0..4u64 {
                    lane.read(p, id as u64 + rep * 16);
                }
                lane.read(p, 4096 + id as u64 * 113 % 3800);
            })
        });
    }

    #[test]
    fn flat_delegates_under_sanitizer() {
        // With a sanitizer attached the flat path must take the exact trace
        // route (it is the only one that feeds the race rules).
        let (g, c, a) = setup();
        let p = g.alloc_zeroed::<f64>(64);
        let mut t = TeamCtx::new(0, 1, 1, 4096, &g, &c, &a);
        t.attach_sanitizer(Box::new(crate::sanitize::Sanitizer::new(0, 1, 32, 512)));
        t.run_lanes_flat(0, &[0, 1], |lane, id| {
            lane.write(p, id as u64, 1.0);
        });
        assert!(t.take_observed().global_writes, "sanitizer observers must still fire");
    }

    #[test]
    fn bank_acc_counts_deep_conflicts_without_saturating() {
        // Regression: the accumulator once tracked per-bank wavefronts in a
        // `u8` with `saturating_add`, silently capping conflict depth at
        // 255 and under-charging pathologically strided access patterns.
        let mut acc = BankAcc::new(32);
        for i in 0..300u32 {
            acc.visit(i * 32); // all distinct slots, all in bank 0
        }
        assert_eq!(acc.worst(), 300, "deep conflicts must count fully");
        // Same-slot accesses broadcast: one wavefront no matter the count.
        acc.clear();
        for _ in 0..300 {
            acc.visit(7);
        }
        assert_eq!(acc.worst(), 1);
    }

    #[test]
    fn bank_count_changes_conflict_wavefronts() {
        // A 64-lane stride-1 access is conflict-free on a 64-bank LDS but
        // folds into a 2-way conflict on 32 banks.
        let mut lds64 = BankAcc::new(64);
        let mut lds32 = BankAcc::new(32);
        for slot in 0..64u32 {
            lds64.visit(slot);
            lds32.visit(slot);
        }
        assert_eq!(lds64.worst(), 1);
        assert_eq!(lds32.worst(), 2);
    }

    #[test]
    fn wave64_stride1_smem_is_conflict_free_end_to_end() {
        // mi100 models the LDS with one bank per wavefront lane, so a dense
        // 64-lane stride-1 shared-memory instruction costs a single
        // wavefront — the old hard-coded 32-bank fold double-charged it.
        // Both engines must agree.
        let c = CostModel::default();
        let run = |arch: &DeviceArch, flat: bool| {
            let g = GlobalMem::new();
            let mut t = TeamCtx::new(0, 1, 1, 4096, &g, &c, arch);
            let off = t.smem.alloc(64 * 8).unwrap();
            let lanes: Vec<u32> = (0..arch.warp_size).collect();
            let body = |lane: &mut Lane<'_, '_>, id: u32| {
                lane.smem_write_f64(off, id, id as f64);
            };
            if flat {
                t.run_lanes_flat(0, &lanes, body);
            } else {
                t.run_lanes(0, &lanes, body);
            }
            t.warp_clock(0)
        };
        let mi = DeviceArch::mi100();
        assert_eq!(run(&mi, false), c.smem_cycles);
        assert_eq!(run(&mi, true), c.smem_cycles);
        // Folding the same access onto 32 banks serializes into 2 waves.
        let mut folded = DeviceArch::mi100();
        folded.smem_banks = 32;
        assert_eq!(run(&folded, false), 2 * c.smem_cycles);
        assert_eq!(run(&folded, true), 2 * c.smem_cycles);
    }

    #[test]
    fn flat_falls_back_on_non_pow2_sector() {
        // A non-power-of-two sector size cannot use the flat path.
        let c = CostModel { sector_bytes: 24, ..Default::default() };
        let a = DeviceArch::a100();
        let run = |flat: bool| {
            let g = GlobalMem::new();
            let p = g.alloc_zeroed::<f64>(64);
            let mut t = TeamCtx::new(0, 1, 1, 0, &g, &c, &a);
            let lanes: Vec<u32> = (0..8).collect();
            if flat {
                t.run_lanes_flat(0, &lanes, |lane, id| {
                    lane.read(p, id as u64);
                });
            } else {
                t.run_lanes(0, &lanes, |lane, id| {
                    lane.read(p, id as u64);
                });
            }
            t.finish(32, 0).0
        };
        assert_eq!(run(false), run(true));
    }
}
