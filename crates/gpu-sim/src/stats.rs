//! Profiling counters produced by simulated execution.

/// A schedulable per-device resource in the host runtime's timeline model.
///
/// A device overlaps three independent engines: the host→device DMA link,
/// the device→host DMA link (PCIe is full duplex), and the compute core.
/// Kernel launches consume [`Resource::Compute`]; the host runtime tags
/// transfers with the two link resources so its virtual-timeline scheduler
/// can overlap them with kernels (and with each other) in simulated time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Host→device DMA engine.
    H2D,
    /// Device→host DMA engine.
    D2H,
    /// The compute core (kernel execution).
    Compute,
}

/// Every resource, in a fixed display/iteration order.
pub const RESOURCES: [Resource; 3] = [Resource::H2D, Resource::D2H, Resource::Compute];

impl Resource {
    /// Dense index for per-resource tables (`0..RESOURCES.len()`).
    pub fn index(self) -> usize {
        match self {
            Resource::H2D => 0,
            Resource::D2H => 1,
            Resource::Compute => 2,
        }
    }

    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Resource::H2D => "h2d",
            Resource::D2H => "d2h",
            Resource::Compute => "compute",
        }
    }
}

/// Cycles consumed per device resource — the shape a launch (or transfer)
/// reports its cost in so the host runtime can attribute it to the right
/// engine on the virtual timeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceCycles {
    /// Host→device link cycles.
    pub h2d: u64,
    /// Device→host link cycles.
    pub d2h: u64,
    /// Compute-core cycles.
    pub compute: u64,
}

impl ResourceCycles {
    /// Cycles charged to one resource.
    pub fn get(&self, r: Resource) -> u64 {
        match r {
            Resource::H2D => self.h2d,
            Resource::D2H => self.d2h,
            Resource::Compute => self.compute,
        }
    }

    /// Add cycles to one resource.
    pub fn add(&mut self, r: Resource, cycles: u64) {
        match r {
            Resource::H2D => self.h2d += cycles,
            Resource::D2H => self.d2h += cycles,
            Resource::Compute => self.compute += cycles,
        }
    }

    /// Sum over all resources — the fully serialized cost.
    pub fn total(&self) -> u64 {
        self.h2d + self.d2h + self.compute
    }
}

/// Resource profile of one executed thread block.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockProfile {
    /// Critical-path cycles of the block (max over warp clocks, including
    /// barrier waits and exposed memory latency).
    pub cycles: u64,
    /// Total warp-instruction issue cycles across all warps.
    pub issue: u64,
    /// Total global-memory sectors transferred.
    pub sectors: u64,
    /// Total shared-memory operations.
    pub smem_ops: u64,
    /// Sectors served from the warp-local L1 window.
    pub l1_hits: u64,
    /// Full-line L1 hits (subset of `l1_hits`): tag hits whose way had
    /// every sector valid — temporal reuse of a completed fill, as opposed
    /// to re-touching a sector while the line fill is still in flight.
    pub l1_full_hits: u64,
    /// First-touch (compulsory) sectors — DRAM-side traffic.
    pub dram_sectors: u64,
    /// 64-byte DRAM burst atoms the compulsory traffic occupies: HBM's
    /// minimum access granularity means a single-sector (32 B) fill still
    /// spends a whole atom of bandwidth, so `2 × dram_atoms ≥
    /// dram_sectors`, with equality only for fully-coalesced fills.
    /// Filled by the launch's block-index-order visit replay (not during
    /// block execution) so the per-visit burst grouping is bit-identical
    /// at any `SIMT_SIM_THREADS`.
    pub dram_atoms: u64,
    /// L1-hit replay cycles included in `issue`/`cycles` that the
    /// hierarchical model moves off the issue pipe into the LSU: the whole
    /// `line_cycles` charge per full-line hit, all but one `sector_cycles`
    /// beat per partial-line hit.
    pub tx_cycles: u64,
    /// Deduplicated sectors touched by warp instructions, L1 hits
    /// included — LSU pipe occupancy in the hierarchical model.
    pub lsu_sectors: u64,
    /// Critical-path cycles net of each warp's own transaction-replay
    /// charges: `max` over warps of `clock − tx` — the latency term the
    /// hierarchical makespan uses instead of `cycles`.
    pub resid_cycles: u64,
    /// L1-missing sectors per L2 bank slice (length =
    /// [`crate::arch::CacheGeom::l2_banks`]); sums to `sectors`.
    pub l2_bank_sectors: Vec<u64>,
    /// Threads the block occupies (occupancy input; includes the extra
    /// team-main warp in generic mode).
    pub threads: u32,
    /// Shared-memory bytes the block occupies (occupancy input).
    pub smem_bytes: u32,
}

/// Memory-hierarchy counters aggregated over a launch, merged from the
/// per-block profiles in block-index order (DESIGN §11) so they are
/// bit-identical at any `SIMT_SIM_THREADS`. Filled for both memory
/// models — only the makespan interpretation differs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Warp-L1 window hits (every requested sector already valid).
    pub l1_hits: u64,
    /// Full-line hits among `l1_hits` (way's entire sector mask valid —
    /// temporal reuse; the rest re-touched a line whose fill was still
    /// in progress).
    pub l1_full_hits: u64,
    /// L1-missing sectors (L2-bound traffic). Equals
    /// [`LaunchStats::total_sectors`].
    pub l1_miss_sectors: u64,
    /// Deduplicated sectors through the SM LSU pipes (hits included).
    pub lsu_sectors: u64,
    /// Offloadable L1-hit replay cycles contained in the issue totals
    /// (full `line_cycles` per full-line hit, all but one `sector_cycles`
    /// beat per partial-line hit).
    pub tx_cycles: u64,
    /// L1-missing sectors per L2 bank slice; sums to `l1_miss_sectors`.
    pub l2_bank_sectors: Vec<u64>,
    /// Compulsory (first-touch) sectors — DRAM traffic. Equals
    /// [`LaunchStats::total_dram_sectors`].
    pub dram_sectors: u64,
    /// 64-byte burst atoms the compulsory traffic occupies (HBM minimum
    /// access granularity); the hierarchical DRAM roof charges
    /// `max(dram_sectors, 2 × dram_atoms)` effective sectors.
    pub dram_atoms: u64,
    /// Cycles the DRAM roof grew because the launch's memory-level
    /// parallelism could not sustain peak bandwidth (hierarchical model
    /// only; always 0 under the flat model).
    pub mlp_stalls: u64,
}

impl MemStats {
    /// Fold one block's profile in. Callers iterate profiles in
    /// block-index order, which is what keeps the merge bit-identical
    /// across block-execution thread counts.
    pub fn merge_block(&mut self, p: &BlockProfile) {
        self.l1_hits += p.l1_hits;
        self.l1_full_hits += p.l1_full_hits;
        self.l1_miss_sectors += p.sectors;
        self.lsu_sectors += p.lsu_sectors;
        self.tx_cycles += p.tx_cycles;
        self.dram_sectors += p.dram_sectors;
        self.dram_atoms += p.dram_atoms;
        if self.l2_bank_sectors.len() < p.l2_bank_sectors.len() {
            self.l2_bank_sectors.resize(p.l2_bank_sectors.len(), 0);
        }
        for (acc, &b) in self.l2_bank_sectors.iter_mut().zip(&p.l2_bank_sectors) {
            *acc += b;
        }
    }
}

/// Runtime-behavior counters, aggregated over a launch. These are what the
/// ablation benchmarks and many tests observe.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RtCounters {
    /// `__parallel` invocations.
    pub parallel_regions: u64,
    /// `__simd` invocations.
    pub simd_loops: u64,
    /// Work items posted through a state machine (team- or SIMD-level).
    pub state_machine_posts: u64,
    /// Sharing-space slots staged to SIMD workers by generic-mode mains
    /// (fn + trip + live registers per worker; shrinks when the dead-stage
    /// pass trims registers no body reads).
    pub staged_slots: u64,
    /// Masked warp-level barriers executed.
    pub warp_syncs: u64,
    /// Block-level barriers executed.
    pub block_barriers: u64,
    /// Times a SIMD group's sharing-space slice overflowed into a global
    /// memory allocation (paper §5.3.1).
    pub sharing_global_fallbacks: u64,
    /// Outlined-function dispatches resolved through the if-cascade (§5.5).
    pub cascade_dispatches: u64,
    /// Outlined-function dispatches that fell back to an indirect call.
    pub indirect_calls: u64,
    /// simd loops executed sequentially because the device lacks warp-level
    /// barriers (AMD fallback, §5.4.1).
    pub sequential_simd_fallbacks: u64,
}

impl RtCounters {
    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, o: &RtCounters) {
        self.parallel_regions += o.parallel_regions;
        self.simd_loops += o.simd_loops;
        self.state_machine_posts += o.state_machine_posts;
        self.staged_slots += o.staged_slots;
        self.warp_syncs += o.warp_syncs;
        self.block_barriers += o.block_barriers;
        self.sharing_global_fallbacks += o.sharing_global_fallbacks;
        self.cascade_dispatches += o.cascade_dispatches;
        self.indirect_calls += o.indirect_calls;
        self.sequential_simd_fallbacks += o.sequential_simd_fallbacks;
    }
}

/// Result of a kernel launch: the simulated time and aggregated counters.
/// `PartialEq` compares every field — the determinism suite asserts stats
/// are bit-identical across block-execution thread counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LaunchStats {
    /// End-to-end simulated kernel cycles (block makespan over SMs plus
    /// launch overhead).
    pub cycles: u64,
    /// Number of blocks launched.
    pub blocks: u32,
    /// Resident blocks per SM the occupancy calculation allowed.
    pub blocks_per_sm: u32,
    /// Total issue cycles across the device.
    pub total_issue: u64,
    /// Total global-memory sectors.
    pub total_sectors: u64,
    /// Total shared-memory operations.
    pub total_smem_ops: u64,
    /// Total L1-window hits.
    pub total_l1_hits: u64,
    /// Total compulsory (DRAM) sectors.
    pub total_dram_sectors: u64,
    /// Memory-hierarchy counters (block-index-order merge of the
    /// per-block profiles, plus the makespan's MLP-stall attribution).
    pub mem: MemStats,
    /// Runtime-behavior counters summed over blocks.
    pub counters: RtCounters,
    /// Protocol violations found by the simtcheck sanitizer, over all
    /// blocks. Always empty unless [`crate::Device::enable_sanitizer`] was
    /// called before the launch.
    pub violations: Vec<crate::sanitize::Violation>,
}

impl LaunchStats {
    /// The launch's cost attributed to device resources: a kernel occupies
    /// the compute engine for its whole makespan and neither DMA link. The
    /// host runtime feeds this into its virtual-timeline scheduler so
    /// transfers it tags [`Resource::H2D`]/[`Resource::D2H`] genuinely
    /// overlap kernel execution in simulated time.
    pub fn resources(&self) -> ResourceCycles {
        ResourceCycles { h2d: 0, d2h: 0, compute: self.cycles }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_cycles_accumulate_and_total() {
        let mut rc = ResourceCycles::default();
        rc.add(Resource::H2D, 100);
        rc.add(Resource::Compute, 50);
        rc.add(Resource::H2D, 10);
        assert_eq!(rc.get(Resource::H2D), 110);
        assert_eq!(rc.get(Resource::D2H), 0);
        assert_eq!(rc.get(Resource::Compute), 50);
        assert_eq!(rc.total(), 160);
        // Dense indices cover the table without collision.
        let idx: Vec<usize> = RESOURCES.iter().map(|r| r.index()).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn launch_stats_charge_the_compute_engine() {
        let s = LaunchStats { cycles: 1234, ..Default::default() };
        let rc = s.resources();
        assert_eq!(rc.compute, 1234);
        assert_eq!(rc.h2d + rc.d2h, 0);
        assert_eq!(rc.total(), 1234);
    }

    #[test]
    fn counters_merge_adds_fields() {
        let mut a = RtCounters { parallel_regions: 1, warp_syncs: 5, ..Default::default() };
        let b = RtCounters {
            parallel_regions: 2,
            warp_syncs: 7,
            sharing_global_fallbacks: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.parallel_regions, 3);
        assert_eq!(a.warp_syncs, 12);
        assert_eq!(a.sharing_global_fallbacks, 3);
        assert_eq!(a.indirect_calls, 0);
    }
}
