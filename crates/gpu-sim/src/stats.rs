//! Profiling counters produced by simulated execution.

/// Resource profile of one executed thread block.
#[derive(Clone, Debug, Default)]
pub struct BlockProfile {
    /// Critical-path cycles of the block (max over warp clocks, including
    /// barrier waits and exposed memory latency).
    pub cycles: u64,
    /// Total warp-instruction issue cycles across all warps.
    pub issue: u64,
    /// Total global-memory sectors transferred.
    pub sectors: u64,
    /// Total shared-memory operations.
    pub smem_ops: u64,
    /// Sectors served from the warp-local L1 window.
    pub l1_hits: u64,
    /// First-touch (compulsory) sectors — DRAM-side traffic.
    pub dram_sectors: u64,
    /// Threads the block occupies (occupancy input; includes the extra
    /// team-main warp in generic mode).
    pub threads: u32,
    /// Shared-memory bytes the block occupies (occupancy input).
    pub smem_bytes: u32,
}

/// Runtime-behavior counters, aggregated over a launch. These are what the
/// ablation benchmarks and many tests observe.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RtCounters {
    /// `__parallel` invocations.
    pub parallel_regions: u64,
    /// `__simd` invocations.
    pub simd_loops: u64,
    /// Work items posted through a state machine (team- or SIMD-level).
    pub state_machine_posts: u64,
    /// Masked warp-level barriers executed.
    pub warp_syncs: u64,
    /// Block-level barriers executed.
    pub block_barriers: u64,
    /// Times a SIMD group's sharing-space slice overflowed into a global
    /// memory allocation (paper §5.3.1).
    pub sharing_global_fallbacks: u64,
    /// Outlined-function dispatches resolved through the if-cascade (§5.5).
    pub cascade_dispatches: u64,
    /// Outlined-function dispatches that fell back to an indirect call.
    pub indirect_calls: u64,
    /// simd loops executed sequentially because the device lacks warp-level
    /// barriers (AMD fallback, §5.4.1).
    pub sequential_simd_fallbacks: u64,
}

impl RtCounters {
    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, o: &RtCounters) {
        self.parallel_regions += o.parallel_regions;
        self.simd_loops += o.simd_loops;
        self.state_machine_posts += o.state_machine_posts;
        self.warp_syncs += o.warp_syncs;
        self.block_barriers += o.block_barriers;
        self.sharing_global_fallbacks += o.sharing_global_fallbacks;
        self.cascade_dispatches += o.cascade_dispatches;
        self.indirect_calls += o.indirect_calls;
        self.sequential_simd_fallbacks += o.sequential_simd_fallbacks;
    }
}

/// Result of a kernel launch: the simulated time and aggregated counters.
#[derive(Clone, Debug, Default)]
pub struct LaunchStats {
    /// End-to-end simulated kernel cycles (block makespan over SMs plus
    /// launch overhead).
    pub cycles: u64,
    /// Number of blocks launched.
    pub blocks: u32,
    /// Resident blocks per SM the occupancy calculation allowed.
    pub blocks_per_sm: u32,
    /// Total issue cycles across the device.
    pub total_issue: u64,
    /// Total global-memory sectors.
    pub total_sectors: u64,
    /// Total shared-memory operations.
    pub total_smem_ops: u64,
    /// Total L1-window hits.
    pub total_l1_hits: u64,
    /// Total compulsory (DRAM) sectors.
    pub total_dram_sectors: u64,
    /// Runtime-behavior counters summed over blocks.
    pub counters: RtCounters,
    /// Protocol violations found by the simtcheck sanitizer, over all
    /// blocks. Always empty unless [`crate::Device::enable_sanitizer`] was
    /// called before the launch.
    pub violations: Vec<crate::sanitize::Violation>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_adds_fields() {
        let mut a = RtCounters { parallel_regions: 1, warp_syncs: 5, ..Default::default() };
        let b = RtCounters {
            parallel_regions: 2,
            warp_syncs: 7,
            sharing_global_fallbacks: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.parallel_regions, 3);
        assert_eq!(a.warp_syncs, 12);
        assert_eq!(a.sharing_global_fallbacks, 3);
        assert_eq!(a.indirect_calls, 0);
    }
}
