//! Block→SM scheduling and the kernel makespan model.
//!
//! Blocks execute functionally one at a time (determinism), producing
//! per-block resource profiles. The *time* a launch takes is then computed
//! analytically:
//!
//! 1. **Occupancy**: resident blocks per SM is limited by the architecture's
//!    block/thread/shared-memory capacities. The extra team-main warp of
//!    generic mode (paper Fig 2) and the enlarged variable-sharing space
//!    (§5.3.1) both reduce occupancy through this calculation.
//! 2. **Waves**: blocks are assigned to SMs round-robin; each SM processes
//!    its blocks in waves of its residency limit. A wave takes
//!    `max(latency, issue-throughput, memory-throughput)` — resident blocks
//!    hide each other's latency until a throughput roof binds.
//! 3. **Device roof**: total DRAM traffic is bounded by device bandwidth.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::arch::DeviceArch;
use crate::cost::CostModel;
use crate::mem::hier::{self, MemModel};
use crate::stats::BlockProfile;

/// Environment variable selecting how many host threads execute blocks.
/// `1` forces the serial path; unset or `0` means available parallelism.
pub const SIM_THREADS_ENV: &str = "SIMT_SIM_THREADS";

/// Resolve the block-execution thread count: an explicit per-device
/// override wins, then [`SIM_THREADS_ENV`], then the host's available
/// parallelism. Always ≥ 1.
pub fn resolve_threads(override_threads: Option<usize>) -> usize {
    if let Some(n) = override_threads {
        return n.max(1);
    }
    if let Ok(v) = std::env::var(SIM_THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Execute `f(block_id)` for every block id in `0..num_blocks` on up to
/// `threads` host threads (spawned for this launch, joined before return)
/// and hand back the results **sorted by block id** — callers merge them in
/// block-index order, which is what keeps parallel launches bit-identical
/// to serial ones.
///
/// Blocks are claimed from a shared atomic counter, so imbalanced blocks
/// don't idle workers. With `threads <= 1` (or a single block) everything
/// runs inline on the caller's thread: exactly today's serial path, no pool
/// at all. A panic in any block is re-raised on the caller.
pub fn run_blocks<R, F>(num_blocks: u32, threads: usize, f: F) -> Vec<(u32, R)>
where
    R: Send,
    F: Fn(u32) -> R + Sync,
{
    if threads <= 1 || num_blocks <= 1 {
        return (0..num_blocks).map(|b| (b, f(b))).collect();
    }
    let workers = threads.min(num_blocks as usize);
    let next = AtomicU32::new(0);
    let mut out: Vec<(u32, R)> = Vec::with_capacity(num_blocks as usize);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= num_blocks {
                            break;
                        }
                        local.push((b, f(b)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => out.extend(local),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    out.sort_by_key(|&(b, _)| b);
    out
}

/// How many blocks of the given shape can be resident on one SM.
/// Returns 0 when a single block exceeds a per-SM capacity (launch error).
pub fn blocks_per_sm(arch: &DeviceArch, threads_per_block: u32, smem_bytes: u32) -> u32 {
    if threads_per_block == 0 {
        return 0;
    }
    let by_threads = arch.max_threads_per_sm / threads_per_block;
    let by_smem = (arch.smem_per_sm).checked_div(smem_bytes).unwrap_or(arch.max_blocks_per_sm);
    by_threads.min(by_smem).min(arch.max_blocks_per_sm)
}

/// Makespan result: the device cycles plus the hierarchical model's
/// MLP-stall attribution (always 0 under the flat model).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Makespan {
    /// Device cycles, excluding launch overhead.
    pub cycles: u64,
    /// Cycles the DRAM roof grew beyond peak-bandwidth time because the
    /// launch's memory-level parallelism could not cover the latency.
    pub mlp_stalls: u64,
}

/// Compute the flat-model device makespan (in cycles, excluding launch
/// overhead) for a set of executed blocks. Kept as the legacy entry point;
/// [`makespan_model`] selects between this and the hierarchical model.
pub fn makespan(
    arch: &DeviceArch,
    cost: &CostModel,
    profiles: &[BlockProfile],
    resident_per_sm: u32,
) -> u64 {
    makespan_model(arch, cost, MemModel::Flat, profiles, resident_per_sm).cycles
}

/// Compute the device makespan under the selected memory model.
///
/// Both models consume the same per-block counters (the charge path is
/// identical — DESIGN §15); they differ in how counters combine:
///
/// * **Flat**: per-wave `max(latency, issue/width, sectors × cycle)` with
///   device-wide aggregate L2/DRAM roofs. Every transaction-replay cycle
///   stays inside `issue` and `cycles`, so baselines with heavy temporal
///   reuse pay L1-hit replays on the issue pipe — the documented
///   su3_bench overshoot.
/// * **Hier**: full-line L1-hit replays (`l1_hits × line_cycles`) retire
///   through a per-SM LSU pipe at L1 bandwidth; the issue and latency
///   terms are net of them. Partial fills and misses keep their replay
///   cycles on the issue path (MSHR allocation serializes them in either
///   model), so kernels without temporal reuse see the flat per-SM wave
///   unchanged. The L2 roof is per bank slice and the DRAM roof is capped
///   by the launch's memory-level parallelism.
pub fn makespan_model(
    arch: &DeviceArch,
    cost: &CostModel,
    model: MemModel,
    profiles: &[BlockProfile],
    resident_per_sm: u32,
) -> Makespan {
    assert!(resident_per_sm >= 1, "occupancy must allow at least one block");
    if profiles.is_empty() {
        return Makespan::default();
    }
    let geom = &arch.cache;
    let nsms = arch.num_sms as usize;
    // Round-robin assignment of blocks to SMs.
    let mut sm_time = vec![0u64; nsms];
    let mut per_sm: Vec<Vec<&BlockProfile>> = vec![Vec::new(); nsms];
    for (i, p) in profiles.iter().enumerate() {
        per_sm[i % nsms].push(p);
    }
    for (sm, blocks) in per_sm.iter().enumerate() {
        let mut t = 0u64;
        for wave in blocks.chunks(resident_per_sm as usize) {
            let w = match model {
                MemModel::Flat => {
                    let latency = wave.iter().map(|b| b.cycles).max().unwrap_or(0);
                    let issue: u64 = wave.iter().map(|b| b.issue).sum();
                    let sectors: u64 = wave.iter().map(|b| b.sectors).sum();
                    // Round up: a trailing partial issue group still costs
                    // a cycle.
                    let issue_time = issue.div_ceil(cost.sm_issue_width.max(1));
                    let mem_time = sectors * cost.sm_sector_cycles;
                    let mut w = latency.max(issue_time).max(mem_time);
                    // Compute and memory pipelines overlap imperfectly.
                    if let Some(extra) = issue_time.min(mem_time).checked_div(cost.overlap_denom) {
                        w += extra;
                    }
                    w
                }
                MemModel::Hier => {
                    // Latency and issue net of the L1-hit replay cycles
                    // that retire in the LSU pipe below, overlapped with
                    // issue. Misses (and one sector beat per partial-line
                    // hit) stay on the issue path exactly as in the flat
                    // wave.
                    let latency = wave.iter().map(|b| b.resid_cycles).max().unwrap_or(0);
                    let issue: u64 = wave.iter().map(|b| b.issue.saturating_sub(b.tx_cycles)).sum();
                    let full_hits: u64 = wave.iter().map(|b| b.l1_full_hits).sum();
                    let sectors: u64 = wave.iter().map(|b| b.sectors).sum();
                    let issue_time = issue.div_ceil(cost.sm_issue_width.max(1));
                    // The LSU's line port replays full-line hits at L1
                    // bandwidth; its sector port drains L1-missing sectors
                    // exactly as in the flat wave. Partial-line hit replays
                    // cost their retained sector beat on the issue path and
                    // their fill bandwidth at the DRAM burst roof — they
                    // occupy no extra LSU throughput.
                    let mem_time = full_hits
                        .div_ceil(geom.lsu_hit_lines_per_cycle.max(1))
                        .max(sectors * cost.sm_sector_cycles);
                    let mut w = latency.max(issue_time).max(mem_time);
                    if let Some(extra) = issue_time.min(mem_time).checked_div(cost.overlap_denom) {
                        w += extra;
                    }
                    w
                }
            };
            t += w;
        }
        sm_time[sm] = t;
    }
    let device_time = sm_time.into_iter().max().unwrap_or(0);
    // Device-wide roofs: all L1-miss traffic crosses the L2; only
    // first-touch (compulsory) traffic crosses DRAM.
    let total_sectors: u64 = profiles.iter().map(|b| b.sectors).sum();
    let total_dram: u64 = profiles.iter().map(|b| b.dram_sectors).sum();
    match model {
        MemModel::Flat => {
            // Round up: a final partial beat of sectors occupies a full
            // cycle.
            let l2_time = total_sectors.div_ceil(cost.l2_sectors_per_cycle.max(1));
            let dram_time = total_dram.div_ceil(cost.dram_sectors_per_cycle.max(1));
            Makespan { cycles: device_time.max(l2_time).max(dram_time), mlp_stalls: 0 }
        }
        MemModel::Hier => {
            // Slowest L2 bank slice (block-index-order fold keeps the
            // totals deterministic).
            let nbanks = geom.l2_banks.max(1) as usize;
            let mut banks = vec![0u64; nbanks];
            for p in profiles {
                for (acc, &b) in banks.iter_mut().zip(&p.l2_bank_sectors) {
                    *acc += b;
                }
            }
            let l2_time = hier::l2_bank_time(&banks, geom);
            // Outstanding DRAM sectors the launch can sustain: resident
            // warps across the SMs it actually occupies.
            let warps_per_block =
                profiles.iter().map(|p| arch.warps_for(p.threads)).max().unwrap_or(1).max(1);
            let sms_used = (profiles.len() as u64).min(nsms as u64).max(1);
            let outstanding =
                sms_used * resident_per_sm as u64 * warps_per_block as u64 * geom.mlp_per_warp;
            let total_atoms: u64 = profiles.iter().map(|b| b.dram_atoms).sum();
            let (dram_time, mlp_stalls) = hier::dram_time(
                total_dram,
                total_atoms,
                outstanding,
                cost.dram_sectors_per_cycle,
                geom,
            );
            Makespan { cycles: device_time.max(l2_time).max(dram_time), mlp_stalls }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(cycles: u64, issue: u64, sectors: u64) -> BlockProfile {
        // Fabricated profiles treat all traffic as compulsory.
        BlockProfile { cycles, issue, sectors, dram_sectors: sectors, ..Default::default() }
    }

    #[test]
    fn occupancy_limited_by_threads() {
        let a = DeviceArch::a100(); // 2048 threads/SM
        assert_eq!(blocks_per_sm(&a, 1024, 0), 2);
        assert_eq!(blocks_per_sm(&a, 256, 0), 8);
        assert_eq!(blocks_per_sm(&a, 128, 0), 16);
        // Tiny blocks hit the block-count limit.
        assert_eq!(blocks_per_sm(&a, 32, 0), 32);
    }

    #[test]
    fn occupancy_limited_by_smem() {
        let a = DeviceArch::a100(); // 164 KiB smem/SM
        assert_eq!(blocks_per_sm(&a, 128, 64 * 1024), 2);
        assert_eq!(blocks_per_sm(&a, 128, 200 * 1024), 0);
    }

    #[test]
    fn extra_warp_reduces_occupancy() {
        // A generic-mode block (threads + one extra warp) fits fewer copies
        // per SM than its SPMD twin at the boundary.
        let a = DeviceArch::a100();
        let spmd = blocks_per_sm(&a, 1024, 0);
        let generic = blocks_per_sm(&a, 1024 + 32, 0);
        assert!(generic < spmd);
    }

    #[test]
    fn single_block_latency_bound() {
        let a = DeviceArch::tiny();
        let c = CostModel::default();
        let p = vec![block(1000, 10, 0)];
        assert_eq!(makespan(&a, &c, &p, 4), 1000);
    }

    #[test]
    fn many_blocks_fill_sms() {
        let a = DeviceArch::tiny(); // 4 SMs
        let c = CostModel::default();
        // 8 identical latency-bound blocks, residency 1: two waves per SM.
        let p: Vec<_> = (0..8).map(|_| block(500, 10, 0)).collect();
        assert_eq!(makespan(&a, &c, &p, 1), 1000);
        // With residency 2 the waves overlap (latency hidden).
        assert_eq!(makespan(&a, &c, &p, 2), 500);
    }

    #[test]
    fn issue_throughput_roof_binds() {
        let a = DeviceArch::tiny();
        let c = CostModel::default(); // issue width 2
                                      // 4 blocks spread over 4 SMs (one each) with huge issue totals:
                                      // each SM's wave time is issue-bound, not latency-bound.
        let p = vec![block(10, 10_000, 0); 4];
        let t = makespan(&a, &c, &p, 4);
        assert_eq!(t, 10_000 / c.sm_issue_width);
        // 8 blocks, residency 4: two blocks per SM in one wave sum issue.
        let p8 = vec![block(10, 10_000, 0); 8];
        let t8 = makespan(&a, &c, &p8, 4);
        assert_eq!(t8, 2 * 10_000 / c.sm_issue_width);
    }

    #[test]
    fn ragged_issue_rounds_up() {
        let a = DeviceArch::tiny();
        let c = CostModel::default(); // issue width 2
                                      // The odd trailing instruction still occupies an issue cycle:
                                      // 10_001 instructions on a 2-wide SM take 5_001 cycles, not 5_000.
        let p = vec![block(1, 10_001, 0)];
        assert_eq!(makespan(&a, &c, &p, 1), 5_001);
    }

    #[test]
    fn ragged_l2_rounds_up() {
        let a = DeviceArch::tiny(); // 4 SMs
                                    // Isolate the device-wide L2 roof from the per-SM memory pipes.
        let c = CostModel { sm_sector_cycles: 0, ..Default::default() };
        let p: Vec<_> = (0..4)
            .map(|_| BlockProfile { cycles: 1, sectors: 101, ..Default::default() })
            .collect();
        // 404 sectors through an 80-sector/cycle L2 need 6 cycles, not 5.
        assert_eq!(makespan(&a, &c, &p, 1), 404u64.div_ceil(c.l2_sectors_per_cycle));
        assert_eq!(makespan(&a, &c, &p, 1), 6);
    }

    #[test]
    fn ragged_dram_rounds_up() {
        let a = DeviceArch::a100(); // 108 SMs
        let c = CostModel::default(); // 32 DRAM sectors/cycle
        let p: Vec<_> = (0..108).map(|_| block(10, 0, 1_000_001)).collect();
        // 108_000_108 compulsory sectors: the final partial beat costs a
        // full cycle (…04, not …03 as truncation used to report).
        assert_eq!(makespan(&a, &c, &p, 1), 108_000_108u64.div_ceil(32));
        assert_eq!(makespan(&a, &c, &p, 1), 3_375_004);
    }

    #[test]
    fn dram_roof_binds() {
        let a = DeviceArch::a100();
        let c = CostModel::default();
        let p: Vec<_> = (0..108).map(|_| block(10, 10, 1_000_000)).collect();
        let t = makespan(&a, &c, &p, 1);
        // Per-SM: 1M sectors × 2 cycles = 2M. DRAM: 108M sectors / 32 ≈ 3.37M.
        assert!(t > 3_000_000, "DRAM roof should dominate, got {t}");
    }

    #[test]
    fn empty_launch_is_zero() {
        let a = DeviceArch::tiny();
        let c = CostModel::default();
        assert_eq!(makespan(&a, &c, &[], 1), 0);
    }

    #[test]
    fn run_blocks_covers_every_block_in_order() {
        for threads in [1, 2, 4, 8] {
            let out = run_blocks(37, threads, |b| b * 10);
            assert_eq!(out.len(), 37, "threads={threads}");
            for (i, &(b, v)) in out.iter().enumerate() {
                assert_eq!(b, i as u32);
                assert_eq!(v, b * 10);
            }
        }
    }

    #[test]
    fn run_blocks_serial_path_stays_on_caller_thread() {
        let caller = std::thread::current().id();
        let out = run_blocks(4, 1, |b| {
            assert_eq!(std::thread::current().id(), caller);
            b
        });
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn run_blocks_empty_grid() {
        let out = run_blocks(0, 8, |b| b);
        assert!(out.is_empty());
    }

    #[test]
    fn run_blocks_propagates_panics() {
        let r = std::panic::catch_unwind(|| {
            run_blocks(8, 4, |b| {
                if b == 5 {
                    panic!("block 5 exploded");
                }
                b
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn resolve_threads_override_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
        assert!(resolve_threads(None) >= 1);
    }
}
