//! Devices and kernel launches.
//!
//! A [`Device`] owns its global memory and executes kernel launches. Blocks
//! are mutually independent (no inter-block synchronization exists within a
//! launch), so they execute concurrently on a spawn-at-launch worker pool
//! ([`crate::sched::run_blocks`], sized by `SIMT_SIM_THREADS`; 1 = serial),
//! each against a fresh isolated [`TeamCtx`]. Per-block profiles, counters,
//! traces and sanitizer findings are merged in block-index order, so the
//! resulting [`LaunchStats`] is bit-identical to a serial run at any thread
//! count; the launch result combines the per-block profiles into a
//! simulated makespan via [`crate::sched`].

use crate::arch::DeviceArch;
use crate::cost::CostModel;
use crate::exec::{burst_atoms, TeamCtx, VisitLog};
use crate::mem::global::{FallbackRange, GlobalMem};
use crate::mem::hier::{self, MemModel};
use crate::sanitize::{ForeignTouch, Sanitizer, Violation};
use crate::sched;
use crate::stats::{BlockProfile, LaunchStats, MemStats, RtCounters};
use crate::trace::Trace;

/// Everything one block's execution produced, collected by the worker pool
/// and merged on the launching thread in block-index order.
struct BlockOutcome {
    profile: BlockProfile,
    counters: RtCounters,
    violations: Vec<Violation>,
    foreign: Vec<ForeignTouch>,
    fallbacks: Vec<FallbackRange>,
    trace: Option<Trace>,
    visits: VisitLog,
}

/// Geometry of one kernel launch.
#[derive(Clone, Copy, Debug)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub num_blocks: u32,
    /// Threads per block — must be a multiple of the warp size and include
    /// any extra runtime warp (generic-mode team main, paper Fig 2).
    pub threads_per_block: u32,
    /// Shared memory per block, bytes (runtime sharing space + globalized
    /// variables + user allocations).
    pub smem_bytes: u32,
}

/// Reasons a launch is rejected, mirroring CUDA launch failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaunchError {
    /// Grid has zero blocks.
    ZeroBlocks,
    /// Threads per block is zero or exceeds the device limit.
    BadBlockSize { requested: u32, max: u32 },
    /// Threads per block is not a multiple of the warp size.
    UnalignedBlockSize { requested: u32, warp: u32 },
    /// Shared memory request exceeds the per-block capacity.
    SmemTooLarge { requested: u32, max: u32 },
    /// The block shape fits no SM (occupancy zero).
    ZeroOccupancy,
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::ZeroBlocks => write!(f, "launch with zero blocks"),
            LaunchError::BadBlockSize { requested, max } => {
                write!(f, "block size {requested} exceeds device limit {max}")
            }
            LaunchError::UnalignedBlockSize { requested, warp } => {
                write!(f, "block size {requested} is not a multiple of warp size {warp}")
            }
            LaunchError::SmemTooLarge { requested, max } => {
                write!(f, "shared memory {requested} B exceeds per-block limit {max} B")
            }
            LaunchError::ZeroOccupancy => write!(f, "block shape fits no SM"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// A simulated GPU: architecture, cost model, and global memory.
pub struct Device {
    /// Architecture descriptor.
    pub arch: DeviceArch,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Device global memory.
    pub global: GlobalMem,
    /// Event trace of the most recent launch (empty unless enabled).
    pub trace: crate::trace::Trace,
    trace_enabled: bool,
    trace_cap: usize,
    sanitize_enabled: bool,
    /// Use the dense pre-compression sync table in the sanitizer (baseline
    /// for the `simspeed` bench; also via `SIMT_SAN_DENSE=1`).
    san_dense: bool,
    /// Block-execution thread count override; `None` = `SIMT_SIM_THREADS`
    /// env or available parallelism (see [`sched::resolve_threads`]).
    sim_threads: Option<usize>,
    /// Memory cost-model override; `None` = `SIMT_SIM_MEM` env or the
    /// hierarchical default (see [`hier::resolve_mem_model`]).
    mem_model: Option<MemModel>,
}

impl Device {
    /// Create a device with the default cost model.
    pub fn new(arch: DeviceArch) -> Device {
        // `SIMT_SANITIZE=1` (or any non-empty value other than "0") turns
        // simtcheck on for every device, so a whole test run can be
        // sanitized without touching individual call sites.
        let sanitize_env =
            std::env::var("SIMT_SANITIZE").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
        let dense_env =
            std::env::var("SIMT_SAN_DENSE").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
        Device {
            arch,
            cost: CostModel::default(),
            global: GlobalMem::new(),
            trace: crate::trace::Trace::default(),
            trace_enabled: false,
            trace_cap: 0,
            sanitize_enabled: sanitize_env,
            san_dense: dense_env,
            sim_threads: None,
            mem_model: None,
        }
    }

    /// Enable event tracing for subsequent launches, keeping at most `cap`
    /// events per launch in [`Device::trace`].
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = crate::trace::Trace::with_capacity(cap);
        self.trace_enabled = true;
        self.trace_cap = cap;
    }

    /// Pin the number of host threads used to execute blocks, overriding
    /// `SIMT_SIM_THREADS`. `Some(1)` forces the serial path; `None` returns
    /// to environment/auto sizing.
    pub fn set_sim_threads(&mut self, threads: Option<usize>) {
        self.sim_threads = threads;
    }

    /// Thread count the next launch will use.
    pub fn sim_threads(&self) -> usize {
        sched::resolve_threads(self.sim_threads)
    }

    /// Pin the memory cost model, overriding `SIMT_SIM_MEM`. `None`
    /// returns to environment/default resolution. Tests needing the
    /// legacy flat model must use this rather than mutating the
    /// environment (env mutation races under a parallel test harness).
    pub fn set_mem_model(&mut self, model: Option<MemModel>) {
        self.mem_model = model;
    }

    /// Memory model the next launch will use.
    pub fn mem_model(&self) -> MemModel {
        hier::resolve_mem_model(self.mem_model)
    }

    /// Select the sanitizer's sync-history representation: `true` = the
    /// dense pre-compression `nwarps * ws^2` table (bench baseline),
    /// `false` = the adaptive epoch representation (default).
    pub fn use_dense_sanitizer(&mut self, dense: bool) {
        self.san_dense = dense;
    }

    /// Enable the simtcheck sanitizer (see [`crate::sanitize`]) for
    /// subsequent launches: every block runs with barrier-divergence,
    /// shared-memory-race and sharing-space checks, and findings land in
    /// [`crate::stats::LaunchStats::violations`].
    pub fn enable_sanitizer(&mut self) {
        self.sanitize_enabled = true;
    }

    /// Turn the simtcheck sanitizer off again.
    pub fn disable_sanitizer(&mut self) {
        self.sanitize_enabled = false;
    }

    /// Whether subsequent launches attach the simtcheck sanitizer.
    pub fn sanitizer_enabled(&self) -> bool {
        self.sanitize_enabled
    }

    /// Whether subsequent launches record an event trace.
    pub fn trace_enabled(&self) -> bool {
        self.trace_enabled
    }

    /// A100-like device — the paper's test bed (§6.1).
    pub fn a100() -> Device {
        Device::new(DeviceArch::a100())
    }

    /// Device on the architecture `SIMT_SIM_ARCH` names (default `a100`;
    /// see [`crate::arch::ArchRegistry::from_env`]). Harnesses that should
    /// participate in the CI arch axis construct their devices here; tests
    /// pinning backend-specific numbers keep naming the arch explicitly.
    pub fn from_env() -> Device {
        Device::new(DeviceArch::from_env())
    }

    /// Validate a launch configuration against this device.
    pub fn validate(&self, cfg: &LaunchConfig) -> Result<u32, LaunchError> {
        if cfg.num_blocks == 0 {
            return Err(LaunchError::ZeroBlocks);
        }
        if cfg.threads_per_block == 0 || cfg.threads_per_block > self.arch.max_threads_per_block {
            return Err(LaunchError::BadBlockSize {
                requested: cfg.threads_per_block,
                max: self.arch.max_threads_per_block,
            });
        }
        if !cfg.threads_per_block.is_multiple_of(self.arch.warp_size) {
            return Err(LaunchError::UnalignedBlockSize {
                requested: cfg.threads_per_block,
                warp: self.arch.warp_size,
            });
        }
        if cfg.smem_bytes > self.arch.smem_per_block {
            return Err(LaunchError::SmemTooLarge {
                requested: cfg.smem_bytes,
                max: self.arch.smem_per_block,
            });
        }
        let resident = sched::blocks_per_sm(&self.arch, cfg.threads_per_block, cfg.smem_bytes);
        if resident == 0 {
            return Err(LaunchError::ZeroOccupancy);
        }
        Ok(resident)
    }

    /// Launch a kernel: `entry` is called once per block with that block's
    /// [`TeamCtx`], possibly from several worker threads at once (`entry`
    /// must be `Fn + Sync`; blocks may not communicate except through
    /// global-memory atomics). Returns the simulated launch statistics,
    /// which are bit-identical for every thread count.
    pub fn launch<F>(&mut self, cfg: &LaunchConfig, entry: F) -> Result<LaunchStats, LaunchError>
    where
        F: Fn(&mut TeamCtx<'_>) + Sync,
    {
        let resident = self.validate(cfg)?;
        self.global.reset_touched();
        let nwarps = cfg.threads_per_block / self.arch.warp_size;
        let threads = sched::resolve_threads(self.sim_threads);
        // Shared, immutable launch state the worker closure captures.
        let global = &self.global;
        let cost = &self.cost;
        let arch = &self.arch;
        let (trace_enabled, trace_cap) = (self.trace_enabled, self.trace_cap);
        let (sanitize, dense) = (self.sanitize_enabled, self.san_dense);
        let warp_size = self.arch.warp_size;
        let outcomes = sched::run_blocks(cfg.num_blocks, threads, |block_id| {
            let mut team =
                TeamCtx::new(block_id, cfg.num_blocks, nwarps, cfg.smem_bytes, global, cost, arch);
            if trace_enabled {
                team.attach_trace(Trace::with_capacity(trace_cap));
            }
            if sanitize {
                let san = if dense {
                    Sanitizer::new_dense(block_id, nwarps, warp_size, cfg.smem_bytes / 8)
                } else {
                    Sanitizer::new(block_id, nwarps, warp_size, cfg.smem_bytes / 8)
                };
                team.attach_sanitizer(Box::new(san));
            }
            entry(&mut team);
            let trace = trace_enabled.then(|| team.detach_trace());
            let (violations, foreign) = match team.detach_sanitizer() {
                Some(mut san) => {
                    let foreign = san.take_foreign();
                    (san.finish(), foreign)
                }
                None => (Vec::new(), Vec::new()),
            };
            let fallbacks = team.fallback_ranges();
            let visits = team.take_visits();
            let (profile, counters) = team.finish(cfg.threads_per_block, cfg.smem_bytes);
            BlockOutcome { profile, counters, violations, foreign, fallbacks, trace, visits }
        });

        // Deterministic merge: `run_blocks` returns outcomes sorted by
        // block id, so every reduction below sees them in the same order a
        // serial run would have produced them.
        let mut profiles = Vec::with_capacity(outcomes.len());
        let mut counters = RtCounters::default();
        let mut violations = Vec::new();
        let mut merged_trace = trace_enabled.then(|| Trace::with_capacity(trace_cap));
        let mut fallbacks_by_block: Vec<Vec<FallbackRange>> = Vec::with_capacity(outcomes.len());
        let mut foreign_by_block: Vec<Vec<ForeignTouch>> = Vec::with_capacity(outcomes.len());
        let mut visits_by_block: Vec<VisitLog> = Vec::with_capacity(outcomes.len());
        for (_, o) in outcomes {
            counters.merge(&o.counters);
            violations.extend(o.violations);
            if let (Some(m), Some(t)) = (merged_trace.as_mut(), o.trace) {
                m.absorb(t);
            }
            profiles.push(o.profile);
            fallbacks_by_block.push(o.fallbacks);
            foreign_by_block.push(o.foreign);
            visits_by_block.push(o.visits);
        }
        // Deterministic first-touch replay: walk every block's line-visit
        // log in block-index order against one sequential touched-set and
        // charge each compulsory fill's 64-byte DRAM burst atoms to the
        // visit that claims it. Which visit wins a cross-block shared
        // sector is interleaving-dependent online, and the burst-atom
        // count is nonlinear in that grouping — replaying here reproduces
        // the `SIMT_SIM_THREADS=1` attribution at any thread count.
        let mut touched: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
        for (p, visits) in profiles.iter_mut().zip(&visits_by_block) {
            let mut atoms = 0u64;
            for &packed in visits.entries() {
                let (line, mask) = (packed >> 8, (packed & 0xff) as u8);
                let seen = touched.entry(line).or_insert(0);
                let fresh = mask & !*seen;
                if fresh != 0 {
                    *seen |= fresh;
                    atoms += burst_atoms(fresh);
                }
            }
            p.dram_atoms = atoms;
        }
        if let Some(m) = merged_trace {
            self.trace = m;
        }
        // Cross-team pass: join each block's foreign-arena *writes* against
        // the owner's leaked (never-freed) fallback ranges. Blocks never
        // synchronize with each other, so any such write raced with the
        // owner. Accessor-major order keeps the report deterministic.
        for (accessor, touches) in foreign_by_block.iter().enumerate() {
            for t in touches {
                if !t.write {
                    continue;
                }
                let leaked = fallbacks_by_block
                    .get(t.owner as usize)
                    .is_some_and(|fb| fb.iter().any(|r| !r.freed && r.contains(t.addr)));
                if leaked {
                    violations.push(Violation::CrossTeamFallbackRace {
                        owner: t.owner,
                        accessor: accessor as u32,
                        thread: t.thread,
                        addr: t.addr,
                    });
                }
            }
        }
        // Findings are part of LaunchStats either way; the stderr echo exists
        // for callers (examples, benches) that never look at `violations`.
        for v in &violations {
            eprintln!("simtcheck: {v}");
        }
        let span =
            sched::makespan_model(&self.arch, &self.cost, self.mem_model(), &profiles, resident);
        // Block-index-order fold of the memory counters (profiles are
        // already sorted by block id) — bit-identical at any thread count.
        let mut mem = MemStats::default();
        for p in &profiles {
            mem.merge_block(p);
        }
        mem.mlp_stalls = span.mlp_stalls;
        Ok(LaunchStats {
            cycles: span.cycles + self.cost.launch_overhead,
            blocks: cfg.num_blocks,
            blocks_per_sm: resident,
            total_issue: profiles.iter().map(|p| p.issue).sum(),
            total_sectors: profiles.iter().map(|p| p.sectors).sum(),
            total_smem_ops: profiles.iter().map(|p| p.smem_ops).sum(),
            total_l1_hits: profiles.iter().map(|p| p.l1_hits).sum(),
            total_dram_sectors: profiles.iter().map(|p| p.dram_sectors).sum(),
            mem,
            counters,
            violations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_configs() {
        let d = Device::a100();
        let ok = LaunchConfig { num_blocks: 1, threads_per_block: 128, smem_bytes: 0 };
        assert!(d.validate(&ok).is_ok());
        assert_eq!(d.validate(&LaunchConfig { num_blocks: 0, ..ok }), Err(LaunchError::ZeroBlocks));
        assert!(matches!(
            d.validate(&LaunchConfig { threads_per_block: 2048, ..ok }),
            Err(LaunchError::BadBlockSize { .. })
        ));
        assert!(matches!(
            d.validate(&LaunchConfig { threads_per_block: 100, ..ok }),
            Err(LaunchError::UnalignedBlockSize { .. })
        ));
        assert!(matches!(
            d.validate(&LaunchConfig { smem_bytes: 1 << 20, ..ok }),
            Err(LaunchError::SmemTooLarge { .. })
        ));
    }

    #[test]
    fn launch_runs_every_block_once() {
        let mut d = Device::new(DeviceArch::tiny());
        let p = d.global.alloc_zeroed::<u64>(16);
        let cfg = LaunchConfig { num_blocks: 16, threads_per_block: 32, smem_bytes: 0 };
        let stats = d
            .launch(&cfg, |team| {
                let bid = team.block_id as u64;
                team.run_lanes(0, &[0], move |lane, _| {
                    lane.write(p, bid, bid + 1);
                });
            })
            .unwrap();
        assert_eq!(stats.blocks, 16);
        let out = d.global.read_slice(p, 16);
        let expect: Vec<u64> = (1..=16).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn launch_is_deterministic() {
        let run = || {
            let mut d = Device::a100();
            let p = d.global.alloc_zeroed::<f64>(1024);
            let cfg = LaunchConfig { num_blocks: 64, threads_per_block: 128, smem_bytes: 1024 };
            d.launch(&cfg, |team| {
                for w in 0..team.nwarps() {
                    let lanes: Vec<u32> = (0..32).collect();
                    team.run_lanes(w, &lanes, |lane, id| {
                        let i = (w * 32 + id) as u64;
                        let v = lane.read(p, i % 1024);
                        lane.work(5);
                        lane.write(p, i % 1024, v + 1.0);
                    });
                }
                team.block_barrier();
            })
            .unwrap()
            .cycles
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn more_blocks_take_longer() {
        let mut d = Device::new(DeviceArch::tiny());
        let cfg1 = LaunchConfig { num_blocks: 4, threads_per_block: 64, smem_bytes: 0 };
        let cfg2 = LaunchConfig { num_blocks: 64, threads_per_block: 64, smem_bytes: 0 };
        let body = |team: &mut TeamCtx<'_>| {
            team.charge_alu(0, 10_000);
        };
        let t1 = d.launch(&cfg1, body).unwrap().cycles;
        let t2 = d.launch(&cfg2, body).unwrap().cycles;
        assert!(t2 > t1, "16x blocks must take longer: {t1} vs {t2}");
    }

    #[test]
    fn launch_overhead_is_floor() {
        let mut d = Device::new(DeviceArch::tiny());
        let cfg = LaunchConfig { num_blocks: 1, threads_per_block: 32, smem_bytes: 0 };
        let stats = d.launch(&cfg, |_| {}).unwrap();
        assert_eq!(stats.cycles, d.cost.launch_overhead);
    }
}
