//! Devices and kernel launches.
//!
//! A [`Device`] owns its global memory and executes kernel launches: blocks
//! run one at a time in block-id order (deterministic), each against a fresh
//! [`TeamCtx`]; the launch result combines the per-block profiles into a
//! simulated makespan via [`crate::sched`].

use crate::arch::DeviceArch;
use crate::cost::CostModel;
use crate::exec::TeamCtx;
use crate::mem::global::GlobalMem;
use crate::sched;
use crate::stats::{LaunchStats, RtCounters};

/// Geometry of one kernel launch.
#[derive(Clone, Copy, Debug)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub num_blocks: u32,
    /// Threads per block — must be a multiple of the warp size and include
    /// any extra runtime warp (generic-mode team main, paper Fig 2).
    pub threads_per_block: u32,
    /// Shared memory per block, bytes (runtime sharing space + globalized
    /// variables + user allocations).
    pub smem_bytes: u32,
}

/// Reasons a launch is rejected, mirroring CUDA launch failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaunchError {
    /// Grid has zero blocks.
    ZeroBlocks,
    /// Threads per block is zero or exceeds the device limit.
    BadBlockSize { requested: u32, max: u32 },
    /// Threads per block is not a multiple of the warp size.
    UnalignedBlockSize { requested: u32, warp: u32 },
    /// Shared memory request exceeds the per-block capacity.
    SmemTooLarge { requested: u32, max: u32 },
    /// The block shape fits no SM (occupancy zero).
    ZeroOccupancy,
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::ZeroBlocks => write!(f, "launch with zero blocks"),
            LaunchError::BadBlockSize { requested, max } => {
                write!(f, "block size {requested} exceeds device limit {max}")
            }
            LaunchError::UnalignedBlockSize { requested, warp } => {
                write!(f, "block size {requested} is not a multiple of warp size {warp}")
            }
            LaunchError::SmemTooLarge { requested, max } => {
                write!(f, "shared memory {requested} B exceeds per-block limit {max} B")
            }
            LaunchError::ZeroOccupancy => write!(f, "block shape fits no SM"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// A simulated GPU: architecture, cost model, and global memory.
pub struct Device {
    /// Architecture descriptor.
    pub arch: DeviceArch,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Device global memory.
    pub global: GlobalMem,
    /// Event trace of the most recent launch (empty unless enabled).
    pub trace: crate::trace::Trace,
    trace_enabled: bool,
    sanitize_enabled: bool,
}

impl Device {
    /// Create a device with the default cost model.
    pub fn new(arch: DeviceArch) -> Device {
        // `SIMT_SANITIZE=1` (or any non-empty value other than "0") turns
        // simtcheck on for every device, so a whole test run can be
        // sanitized without touching individual call sites.
        let sanitize_env =
            std::env::var("SIMT_SANITIZE").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
        Device {
            arch,
            cost: CostModel::default(),
            global: GlobalMem::new(),
            trace: crate::trace::Trace::default(),
            trace_enabled: false,
            sanitize_enabled: sanitize_env,
        }
    }

    /// Enable event tracing for subsequent launches, keeping at most `cap`
    /// events per launch in [`Device::trace`].
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = crate::trace::Trace::with_capacity(cap);
        self.trace_enabled = true;
    }

    /// Enable the simtcheck sanitizer (see [`crate::sanitize`]) for
    /// subsequent launches: every block runs with barrier-divergence,
    /// shared-memory-race and sharing-space checks, and findings land in
    /// [`crate::stats::LaunchStats::violations`].
    pub fn enable_sanitizer(&mut self) {
        self.sanitize_enabled = true;
    }

    /// Turn the simtcheck sanitizer off again.
    pub fn disable_sanitizer(&mut self) {
        self.sanitize_enabled = false;
    }

    /// A100-like device — the paper's test bed (§6.1).
    pub fn a100() -> Device {
        Device::new(DeviceArch::a100())
    }

    /// Validate a launch configuration against this device.
    pub fn validate(&self, cfg: &LaunchConfig) -> Result<u32, LaunchError> {
        if cfg.num_blocks == 0 {
            return Err(LaunchError::ZeroBlocks);
        }
        if cfg.threads_per_block == 0 || cfg.threads_per_block > self.arch.max_threads_per_block {
            return Err(LaunchError::BadBlockSize {
                requested: cfg.threads_per_block,
                max: self.arch.max_threads_per_block,
            });
        }
        if !cfg.threads_per_block.is_multiple_of(self.arch.warp_size) {
            return Err(LaunchError::UnalignedBlockSize {
                requested: cfg.threads_per_block,
                warp: self.arch.warp_size,
            });
        }
        if cfg.smem_bytes > self.arch.smem_per_block {
            return Err(LaunchError::SmemTooLarge {
                requested: cfg.smem_bytes,
                max: self.arch.smem_per_block,
            });
        }
        let resident = sched::blocks_per_sm(&self.arch, cfg.threads_per_block, cfg.smem_bytes);
        if resident == 0 {
            return Err(LaunchError::ZeroOccupancy);
        }
        Ok(resident)
    }

    /// Launch a kernel: `entry` is called once per block with that block's
    /// [`TeamCtx`]. Returns the simulated launch statistics.
    pub fn launch<F>(
        &mut self,
        cfg: &LaunchConfig,
        mut entry: F,
    ) -> Result<LaunchStats, LaunchError>
    where
        F: FnMut(&mut TeamCtx<'_>),
    {
        let resident = self.validate(cfg)?;
        self.global.reset_touched();
        if self.trace_enabled {
            self.trace.clear();
        }
        let nwarps = cfg.threads_per_block / self.arch.warp_size;
        let mut profiles = Vec::with_capacity(cfg.num_blocks as usize);
        let mut counters = RtCounters::default();
        let mut violations = Vec::new();
        for block_id in 0..cfg.num_blocks {
            let mut team = TeamCtx::new(
                block_id,
                cfg.num_blocks,
                nwarps,
                cfg.smem_bytes,
                &mut self.global,
                &self.cost,
                &self.arch,
            );
            if self.trace_enabled {
                team.attach_trace(std::mem::take(&mut self.trace));
            }
            if self.sanitize_enabled {
                team.attach_sanitizer(Box::new(crate::sanitize::Sanitizer::new(
                    block_id,
                    nwarps,
                    self.arch.warp_size,
                    cfg.smem_bytes / 8,
                )));
            }
            entry(&mut team);
            if self.trace_enabled {
                self.trace = team.detach_trace();
            }
            if let Some(san) = team.detach_sanitizer() {
                violations.extend(san.finish());
            }
            let (profile, c) = team.finish(cfg.threads_per_block, cfg.smem_bytes);
            counters.merge(&c);
            profiles.push(profile);
        }
        // Findings are part of LaunchStats either way; the stderr echo exists
        // for callers (examples, benches) that never look at `violations`.
        for v in &violations {
            eprintln!("simtcheck: {v}");
        }
        let span = sched::makespan(&self.arch, &self.cost, &profiles, resident);
        Ok(LaunchStats {
            cycles: span + self.cost.launch_overhead,
            blocks: cfg.num_blocks,
            blocks_per_sm: resident,
            total_issue: profiles.iter().map(|p| p.issue).sum(),
            total_sectors: profiles.iter().map(|p| p.sectors).sum(),
            total_smem_ops: profiles.iter().map(|p| p.smem_ops).sum(),
            total_l1_hits: profiles.iter().map(|p| p.l1_hits).sum(),
            total_dram_sectors: profiles.iter().map(|p| p.dram_sectors).sum(),
            counters,
            violations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_configs() {
        let d = Device::a100();
        let ok = LaunchConfig { num_blocks: 1, threads_per_block: 128, smem_bytes: 0 };
        assert!(d.validate(&ok).is_ok());
        assert_eq!(d.validate(&LaunchConfig { num_blocks: 0, ..ok }), Err(LaunchError::ZeroBlocks));
        assert!(matches!(
            d.validate(&LaunchConfig { threads_per_block: 2048, ..ok }),
            Err(LaunchError::BadBlockSize { .. })
        ));
        assert!(matches!(
            d.validate(&LaunchConfig { threads_per_block: 100, ..ok }),
            Err(LaunchError::UnalignedBlockSize { .. })
        ));
        assert!(matches!(
            d.validate(&LaunchConfig { smem_bytes: 1 << 20, ..ok }),
            Err(LaunchError::SmemTooLarge { .. })
        ));
    }

    #[test]
    fn launch_runs_every_block_once() {
        let mut d = Device::new(DeviceArch::tiny());
        let p = d.global.alloc_zeroed::<u64>(16);
        let cfg = LaunchConfig { num_blocks: 16, threads_per_block: 32, smem_bytes: 0 };
        let stats = d
            .launch(&cfg, |team| {
                let bid = team.block_id as u64;
                team.run_lanes(0, &[0], move |lane, _| {
                    lane.write(p, bid, bid + 1);
                });
            })
            .unwrap();
        assert_eq!(stats.blocks, 16);
        let out = d.global.read_slice(p, 16);
        let expect: Vec<u64> = (1..=16).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn launch_is_deterministic() {
        let run = || {
            let mut d = Device::a100();
            let p = d.global.alloc_zeroed::<f64>(1024);
            let cfg = LaunchConfig { num_blocks: 64, threads_per_block: 128, smem_bytes: 1024 };
            d.launch(&cfg, |team| {
                for w in 0..team.nwarps() {
                    let lanes: Vec<u32> = (0..32).collect();
                    team.run_lanes(w, &lanes, |lane, id| {
                        let i = (w * 32 + id) as u64;
                        let v = lane.read(p, i % 1024);
                        lane.work(5);
                        lane.write(p, i % 1024, v + 1.0);
                    });
                }
                team.block_barrier();
            })
            .unwrap()
            .cycles
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn more_blocks_take_longer() {
        let mut d = Device::new(DeviceArch::tiny());
        let cfg1 = LaunchConfig { num_blocks: 4, threads_per_block: 64, smem_bytes: 0 };
        let cfg2 = LaunchConfig { num_blocks: 64, threads_per_block: 64, smem_bytes: 0 };
        let body = |team: &mut TeamCtx<'_>| {
            team.charge_alu(0, 10_000);
        };
        let t1 = d.launch(&cfg1, body).unwrap().cycles;
        let t2 = d.launch(&cfg2, body).unwrap().cycles;
        assert!(t2 > t1, "16x blocks must take longer: {t1} vs {t2}");
    }

    #[test]
    fn launch_overhead_is_floor() {
        let mut d = Device::new(DeviceArch::tiny());
        let cfg = LaunchConfig { num_blocks: 1, threads_per_block: 32, smem_bytes: 0 };
        let stats = d.launch(&cfg, |_| {}).unwrap();
        assert_eq!(stats.cycles, d.cost.launch_overhead);
    }
}
