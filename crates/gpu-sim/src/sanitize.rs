//! simtcheck — an always-available runtime sanitizer for the simulated
//! device runtime.
//!
//! The simulator executes deterministically, but the *protocols* the OpenMP
//! runtime layers on top of it (generic-mode state machines, masked warp
//! barriers, the variable sharing space of §5.3.1) have invariants the cost
//! model alone never checks. `simtcheck` validates them during execution:
//!
//! 1. **Barrier divergence** — a block barrier or a masked warp sync
//!    (`synchronizeWarp(simdmask())`, §5.1) that is not reached by every
//!    required participant (e.g. generic-mode workers vs the extra
//!    team-main warp) deadlocks real hardware.
//! 2. **Shared-memory races** — two accesses to the same shared-memory
//!    slot from different threads with no synchronization between them
//!    (same *epoch*), at least one a write. Epochs advance at block
//!    barriers (all threads) and warp syncs (the participating lanes).
//! 3. **Sharing-space misuse** — reads of never-written sharing-space
//!    slots, writes that overflow a SIMD group's slice instead of taking
//!    the global-memory fallback, and fallback allocations still live when
//!    `__target_deinit` runs (the paper frees them at the end of every
//!    parallel region, §5.3.1).
//!
//! Enable it with [`crate::Device::enable_sanitizer`]; findings surface as
//! [`Violation`]s on [`crate::stats::LaunchStats::violations`]. The runtime
//! interpreter (in `simt-omp-core`) feeds the sanitizer the metadata it
//! needs: the sharing-space layout per parallel region, barrier arrival
//! sets, and the lane masks of masked warp syncs.

use crate::mask::LaneMask;

/// Where a barrier-divergence violation was detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BarrierKind {
    /// Block-level barrier: `missing` holds warp indices.
    Block,
    /// Masked warp-level barrier: `missing` holds lane indices.
    WarpSync {
        /// The warp the masked sync ran on.
        warp: u32,
    },
}

/// One shared-memory access, as labelled by the sanitizer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessLabel {
    /// Global thread id within the block (`warp * warp_size + lane`).
    pub thread: u32,
    /// `true` for a write, `false` for a read.
    pub write: bool,
    /// The thread's synchronization epoch at the time of the access.
    pub epoch: u64,
}

/// A protocol violation detected during a sanitized launch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A barrier was released without every required participant arriving.
    BarrierDivergence {
        /// Block id.
        block: u32,
        /// Block barrier or masked warp sync.
        kind: BarrierKind,
        /// Missing participants (warp ids for block barriers, lane ids for
        /// warp syncs).
        missing: Vec<u32>,
    },
    /// Two unsynchronized accesses to the same shared-memory slot from
    /// different threads, at least one a write.
    SharedMemRace {
        /// Block id.
        block: u32,
        /// Shared-memory slot index.
        slot: u32,
        /// The earlier access.
        first: AccessLabel,
        /// The later, conflicting access.
        second: AccessLabel,
    },
    /// A sharing-space slot was read before any thread wrote it.
    UnwrittenRead {
        /// Block id.
        block: u32,
        /// Shared-memory slot index.
        slot: u32,
        /// Reading thread.
        thread: u32,
    },
    /// A thread wrote outside its SIMD group's sharing-space slice instead
    /// of taking the global-memory fallback (§5.3.1).
    SharingOverflow {
        /// Block id.
        block: u32,
        /// Shared-memory slot index written.
        slot: u32,
        /// Writing thread.
        thread: u32,
        /// The writer's SIMD group.
        group: u32,
        /// Slots available per group slice in this region.
        group_slots: u32,
    },
    /// Sharing-space global fallback allocations outlived the parallel
    /// region that created them and were still live at `__target_deinit`.
    LeakedFallback {
        /// Block id.
        block: u32,
        /// Allocations never freed.
        outstanding: u64,
    },
    /// An atomic RMW and a plain (non-atomic) access touched the same
    /// shared-memory slot with no synchronization between them. Atomics
    /// never race with each other, but mixing them with unordered plain
    /// accesses is undefined on real hardware.
    AtomicPlainRace {
        /// Block id.
        block: u32,
        /// Shared-memory slot index.
        slot: u32,
        /// The atomic access.
        atomic: AccessLabel,
        /// The conflicting plain access.
        plain: AccessLabel,
    },
    /// A thread block wrote into another block's *leaked* sharing-space
    /// fallback allocation. Blocks of one launch have no synchronization
    /// between them, so any cross-block write to a fallback that its owner
    /// never freed is an unsynchronized cross-team global-memory race.
    /// Detected at launch merge time from per-block fallback ranges and
    /// foreign-arena access summaries.
    CrossTeamFallbackRace {
        /// Block that allocated (and leaked) the fallback.
        owner: u32,
        /// Block whose thread wrote into it.
        accessor: u32,
        /// Writing thread id within the accessor block.
        thread: u32,
        /// Synthetic byte address written.
        addr: u64,
    },
    /// An outlined function's observed behavior contradicted its declared
    /// effect footprint (static claims are checked, not trusted).
    FootprintViolation {
        /// Block id.
        block: u32,
        /// Which outlined function (e.g. `seq #2`, `simd body #0`).
        func: String,
        /// What the declaration missed.
        detail: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::BarrierDivergence { block, kind, missing } => match kind {
                BarrierKind::Block => {
                    write!(f, "block {block}: block barrier released without warps {missing:?}")
                }
                BarrierKind::WarpSync { warp } => write!(
                    f,
                    "block {block}: masked warp sync on warp {warp} missing lanes {missing:?}"
                ),
            },
            Violation::SharedMemRace { block, slot, first, second } => {
                let k = match (first.write, second.write) {
                    (true, true) => "write-write",
                    (false, true) | (true, false) => "read-write",
                    (false, false) => "read-read",
                };
                write!(
                    f,
                    "block {block}: {k} race on shared slot {slot}: thread {} then \
                     thread {} in epoch {}",
                    first.thread, second.thread, second.epoch
                )
            }
            Violation::UnwrittenRead { block, slot, thread } => {
                write!(f, "block {block}: thread {thread} read never-written sharing slot {slot}")
            }
            Violation::SharingOverflow { block, slot, thread, group, group_slots } => write!(
                f,
                "block {block}: thread {thread} (group {group}) wrote sharing slot \
                 {slot} outside its {group_slots}-slot slice without the global fallback"
            ),
            Violation::LeakedFallback { block, outstanding } => write!(
                f,
                "block {block}: {outstanding} sharing-space global fallback \
                 allocation(s) leaked past __target_deinit"
            ),
            Violation::AtomicPlainRace { block, slot, atomic, plain } => {
                let kind = if plain.write { "write" } else { "read" };
                write!(
                    f,
                    "block {block}: unsynchronized atomic RMW by thread {} vs plain \
                     {kind} by thread {} on shared slot {slot}",
                    atomic.thread, plain.thread
                )
            }
            Violation::CrossTeamFallbackRace { owner, accessor, thread, addr } => write!(
                f,
                "block {accessor}: thread {thread} wrote block {owner}'s leaked \
                 sharing-space fallback at {addr:#x} (cross-team race)"
            ),
            Violation::FootprintViolation { block, func, detail } => {
                write!(f, "block {block}: {func} violated its declared footprint: {detail}")
            }
        }
    }
}

/// The sharing-space layout of the current parallel region, declared by the
/// runtime interpreter so the sanitizer can attribute slots to owners.
#[derive(Clone, Copy, Debug)]
pub struct SharingLayout {
    /// First slot of the sharing space in block shared memory.
    pub base: u32,
    /// Total slots the sharing space reserves.
    pub total_slots: u32,
    /// Slots of the leading team-main slice.
    pub team_slots: u32,
    /// Slots per SIMD-group slice (0 = every post must take the fallback).
    pub group_slots: u32,
    /// Number of SIMD groups in the region.
    pub num_groups: u32,
    /// SIMD group size: thread `tid`'s group is `tid / simdlen`.
    pub simdlen: u32,
}

/// Per-slot access history within the current epoch structure.
#[derive(Clone, Debug, Default)]
struct SlotState {
    last_write: Option<AccessLabel>,
    /// Readers since the last write (one entry per thread, latest epoch).
    readers: Vec<AccessLabel>,
    /// Most recent atomic RMW on the slot (atomics never race with each
    /// other, only with unordered plain accesses).
    last_atomic: Option<AccessLabel>,
}

/// Cap on stored violations per block (further ones are counted, not kept).
const MAX_VIOLATIONS: usize = 64;

/// Cap on recorded foreign-arena touches per block.
const MAX_FOREIGN: usize = 256;

/// One access by this block into another block's fallback arena, reported
/// to the launch merge step (which joins it against the owner's
/// [`crate::mem::global::FallbackRange`]s).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ForeignTouch {
    /// Block id owning the arena that was touched.
    pub owner: u32,
    /// Touching thread id within the recording block.
    pub thread: u32,
    /// Synthetic byte address.
    pub addr: u64,
    /// Whether the touch was a write (plain or atomic RMW).
    pub write: bool,
}

/// Per-warp synchronization summary in the adaptive (FastTrack-style)
/// representation: a scalar epoch of the warp's last *full* sync, inflating
/// to a lazily allocated `ws x ws` pairwise table only when a partial
/// masked `warp_sync_masked` makes lane pairs diverge.
#[derive(Clone, Debug, Default)]
struct WarpSyncState {
    /// Epoch of the last sync covering every lane of the warp.
    last_full: u64,
    /// `pair[a * ws + b]`: epoch of the last partial sync covering lanes
    /// `a` and `b`. `None` until the first partial masked sync on the warp.
    pair: Option<Box<[u64]>>,
}

/// Synchronization history: adaptive per-warp epochs (the default) or the
/// dense `nwarps * ws * ws` table (kept as a measurable baseline — the
/// pre-compression representation whose per-barrier refill is
/// O(warps * lanes^2)).
#[derive(Debug)]
enum SyncTable {
    Adaptive(Vec<WarpSyncState>),
    Dense(Vec<u64>),
}

/// The per-block sanitizer state. Created by the launch path when
/// [`crate::Device::enable_sanitizer`] is on; fed by [`crate::TeamCtx`].
#[derive(Debug)]
pub struct Sanitizer {
    block: u32,
    warp_size: u32,
    nwarps: u32,
    /// Per-thread synchronization epoch: the id of the last sync event the
    /// thread participated in.
    epochs: Vec<u64>,
    next_epoch: u64,
    /// Within-warp synchronization history. Cross-warp ordering comes only
    /// from block barriers ([`Self::last_block_barrier`]), so per-warp
    /// state makes the happens-before check exact. In dense mode the layout
    /// is `table[t * warp_size + l]`: the last sync including thread `t`
    /// and lane `l` of `t`'s own warp.
    sync: SyncTable,
    /// Partial-sync pairwise tables inflated so far (adaptive mode).
    pair_inflations: u64,
    /// Accesses into other blocks' fallback arenas.
    foreign: Vec<ForeignTouch>,
    /// Id of the most recent block barrier.
    last_block_barrier: u64,
    slots: Vec<SlotState>,
    sharing: Option<SharingLayout>,
    /// Warps that announced arrival at the upcoming block barrier.
    arrived_warps: Vec<bool>,
    any_arrival: bool,
    outstanding_fallbacks: u64,
    violations: Vec<Violation>,
    /// Violations beyond [`MAX_VIOLATIONS`], counted but not stored.
    dropped: u64,
}

impl Sanitizer {
    /// Fresh sanitizer for one block, using the adaptive epoch
    /// representation: O(warps) state until a partial masked warp sync
    /// inflates a per-warp pairwise table.
    pub fn new(block: u32, nwarps: u32, warp_size: u32, smem_slots: u32) -> Sanitizer {
        Sanitizer::with_table(
            block,
            nwarps,
            warp_size,
            smem_slots,
            SyncTable::Adaptive(vec![WarpSyncState::default(); nwarps as usize]),
        )
    }

    /// Fresh sanitizer with the dense `nwarps * ws * ws` sync table — the
    /// pre-compression baseline, kept selectable so the `simspeed` bench
    /// can measure what the adaptive representation saves.
    pub fn new_dense(block: u32, nwarps: u32, warp_size: u32, smem_slots: u32) -> Sanitizer {
        Sanitizer::with_table(
            block,
            nwarps,
            warp_size,
            smem_slots,
            SyncTable::Dense(vec![0; (nwarps * warp_size * warp_size) as usize]),
        )
    }

    fn with_table(
        block: u32,
        nwarps: u32,
        warp_size: u32,
        smem_slots: u32,
        sync: SyncTable,
    ) -> Sanitizer {
        Sanitizer {
            block,
            warp_size,
            nwarps,
            epochs: vec![0; (nwarps * warp_size) as usize],
            next_epoch: 0,
            sync,
            pair_inflations: 0,
            foreign: Vec::new(),
            last_block_barrier: 0,
            slots: vec![SlotState::default(); smem_slots as usize],
            sharing: None,
            arrived_warps: vec![false; nwarps as usize],
            any_arrival: false,
            outstanding_fallbacks: 0,
            violations: Vec::new(),
            dropped: 0,
        }
    }

    fn report(&mut self, v: Violation) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(v);
        } else {
            self.dropped += 1;
        }
    }

    /// Violations found beyond the storage cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Words of synchronization-history state currently allocated — the
    /// quantity the adaptive representation keeps O(warps) on kernels with
    /// no partial masked syncs (regression guard against the old eager
    /// `nwarps * ws^2` allocation).
    pub fn sync_words(&self) -> usize {
        match &self.sync {
            SyncTable::Adaptive(warps) => {
                warps.iter().map(|w| 1 + w.pair.as_ref().map_or(0, |p| p.len())).sum()
            }
            SyncTable::Dense(table) => table.len(),
        }
    }

    /// Number of per-warp pairwise tables inflated by partial masked syncs.
    pub fn pairwise_tables(&self) -> u64 {
        self.pair_inflations
    }

    /// Report a violation detected outside the sanitizer itself (the
    /// runtime interpreter's footprint validation uses this).
    pub fn report_external(&mut self, v: Violation) {
        self.report(v);
    }

    // ----- metadata from the runtime interpreter -----------------------

    /// Declare the sharing-space layout of a new parallel region. Clears
    /// the access history of the sharing region (its contents are
    /// re-staged per region).
    pub fn declare_sharing(&mut self, layout: SharingLayout) {
        let lo = layout.base as usize;
        let hi = ((layout.base + layout.total_slots) as usize).min(self.slots.len());
        for s in &mut self.slots[lo..hi.max(lo)] {
            *s = SlotState::default();
        }
        self.sharing = Some(layout);
    }

    /// Announce that `warp` reaches the next block barrier.
    pub fn barrier_arrive(&mut self, warp: u32) {
        if let Some(a) = self.arrived_warps.get_mut(warp as usize) {
            *a = true;
            self.any_arrival = true;
        }
    }

    // ----- synchronization events --------------------------------------

    /// A block barrier executed. If any arrivals were announced, every warp
    /// must have arrived; then all threads advance to a common epoch.
    pub fn on_block_barrier(&mut self) {
        if self.any_arrival {
            let missing: Vec<u32> =
                (0..self.nwarps).filter(|&w| !self.arrived_warps[w as usize]).collect();
            if !missing.is_empty() {
                self.report(Violation::BarrierDivergence {
                    block: self.block,
                    kind: BarrierKind::Block,
                    missing,
                });
            }
        }
        self.arrived_warps.fill(false);
        self.any_arrival = false;
        self.next_epoch += 1;
        self.epochs.fill(self.next_epoch);
        // Adaptive mode needs no per-pair work: `last_block_barrier`
        // dominates every older pairwise epoch in `ordered_before`. The
        // dense baseline pays the O(warps * lanes^2) refill it always did.
        if let SyncTable::Dense(table) = &mut self.sync {
            table.fill(self.next_epoch);
        }
        self.last_block_barrier = self.next_epoch;
    }

    /// An unmasked warp sync on `warp`: all its lanes synchronize.
    pub fn on_warp_sync(&mut self, warp: u32) {
        self.advance_lanes(warp, LaneMask::full(self.warp_size));
    }

    /// A masked warp sync on `warp`: `required` lanes must all arrive;
    /// `arrived` is the set the caller can prove reached the barrier.
    pub fn on_warp_sync_masked(&mut self, warp: u32, required: LaneMask, arrived: LaneMask) {
        let missing = required.minus(arrived);
        if !missing.is_empty() {
            self.report(Violation::BarrierDivergence {
                block: self.block,
                kind: BarrierKind::WarpSync { warp },
                missing: missing.iter().collect(),
            });
        }
        self.advance_lanes(warp, required.or(arrived));
    }

    fn advance_lanes(&mut self, warp: u32, lanes: LaneMask) {
        self.next_epoch += 1;
        let ws = self.warp_size;
        let participants: Vec<u32> = lanes.iter().filter(|&l| l < ws).collect();
        for &a in &participants {
            if let Some(e) = self.epochs.get_mut((warp * ws + a) as usize) {
                *e = self.next_epoch;
            }
        }
        match &mut self.sync {
            SyncTable::Adaptive(warps) => {
                let Some(state) = warps.get_mut(warp as usize) else { return };
                if participants.len() as u32 == ws {
                    // Full sync: one scalar update, no pairwise table.
                    state.last_full = self.next_epoch;
                } else {
                    // Partial masked sync: inflate the warp's pairwise
                    // table on first use.
                    if state.pair.is_none() {
                        state.pair = Some(vec![0u64; (ws * ws) as usize].into_boxed_slice());
                        self.pair_inflations += 1;
                    }
                    let pair = state.pair.as_mut().expect("just inflated");
                    for &a in &participants {
                        for &b in &participants {
                            pair[(a * ws + b) as usize] = self.next_epoch;
                        }
                    }
                }
            }
            SyncTable::Dense(table) => {
                for &a in &participants {
                    let t = (warp * ws + a) as usize;
                    for &b in &participants {
                        if let Some(s) = table.get_mut(t * ws as usize + b as usize) {
                            *s = self.next_epoch;
                        }
                    }
                }
            }
        }
    }

    /// Whether an access by `w_thread` with epoch `w_epoch` happens-before
    /// the *current* event on `thread`: a sync covering both must have run
    /// after the access. Cross-warp, only a block barrier orders; within a
    /// warp, any sync event including both lanes does.
    fn ordered_before(&self, w_thread: u32, w_epoch: u64, thread: u32) -> bool {
        if w_thread == thread {
            return true;
        }
        let ws = self.warp_size;
        let mut latest_common = self.last_block_barrier;
        if w_thread / ws == thread / ws {
            let sw = match &self.sync {
                SyncTable::Adaptive(warps) => {
                    warps.get((thread / ws) as usize).map_or(0, |state| {
                        let pairwise = state
                            .pair
                            .as_ref()
                            .map_or(0, |p| p[((thread % ws) * ws + w_thread % ws) as usize]);
                        state.last_full.max(pairwise)
                    })
                }
                SyncTable::Dense(table) => table
                    .get(thread as usize * ws as usize + (w_thread % ws) as usize)
                    .copied()
                    .unwrap_or(0),
            };
            latest_common = latest_common.max(sw);
        }
        // A common sync issued *before* the access would have raised the
        // accessor's epoch to at least its id, so `> w_epoch` means it ran
        // after the access and orders it before the current event.
        latest_common > w_epoch
    }

    // ----- shared-memory accesses --------------------------------------

    /// Record one shared-memory slot access by global thread `thread`.
    pub fn record_smem(&mut self, thread: u32, slot: u32, write: bool) {
        let epoch = self.epochs.get(thread as usize).copied().unwrap_or(0);
        let label = AccessLabel { thread, write, epoch };
        let block = self.block;
        let in_sharing =
            self.sharing.map(|l| slot >= l.base && slot < l.base + l.total_slots).unwrap_or(false);

        if write {
            if let Some(v) = self.check_overflow(thread, slot) {
                self.report(v);
            }
        }

        let Some(state) = self.slots.get(slot as usize) else { return };
        let mut found: Vec<Violation> = Vec::new();
        // Plain access vs an unordered atomic RMW: the atomic/plain rule.
        if let Some(a) = state.last_atomic {
            if !self.ordered_before(a.thread, a.epoch, thread) {
                found.push(Violation::AtomicPlainRace { block, slot, atomic: a, plain: label });
            }
        }
        if write {
            // A write conflicts with the previous write and with every read
            // since it, unless a covering sync ordered them before us.
            if let Some(w) = state.last_write {
                if !self.ordered_before(w.thread, w.epoch, thread) {
                    found.push(Violation::SharedMemRace { block, slot, first: w, second: label });
                }
            }
            for r in &state.readers {
                if !self.ordered_before(r.thread, r.epoch, thread) {
                    found.push(Violation::SharedMemRace { block, slot, first: *r, second: label });
                }
            }
        } else {
            match state.last_write {
                Some(w) => {
                    if !self.ordered_before(w.thread, w.epoch, thread) {
                        found.push(Violation::SharedMemRace {
                            block,
                            slot,
                            first: w,
                            second: label,
                        });
                    }
                }
                None => {
                    // An atomic counts as initialization: reading after only
                    // atomic writes is not an unwritten read.
                    if in_sharing && state.last_atomic.is_none() {
                        found.push(Violation::UnwrittenRead { block, slot, thread });
                    }
                }
            }
        }
        let state = &mut self.slots[slot as usize];
        if write {
            state.last_write = Some(label);
            state.readers.clear();
            // The plain write supersedes the atomic history; if it raced
            // with the atomic we reported it above.
            state.last_atomic = None;
        } else {
            match state.readers.iter_mut().find(|r| r.thread == thread) {
                Some(r) => *r = label,
                None => state.readers.push(label),
            }
        }
        for v in found {
            self.report(v);
        }
    }

    /// Record one shared-memory atomic RMW by global thread `thread`.
    /// Atomics never race with each other; they conflict only with plain
    /// accesses not ordered before them.
    pub fn record_smem_atomic(&mut self, thread: u32, slot: u32) {
        let epoch = self.epochs.get(thread as usize).copied().unwrap_or(0);
        let label = AccessLabel { thread, write: true, epoch };
        let block = self.block;
        if let Some(v) = self.check_overflow(thread, slot) {
            self.report(v);
        }
        let Some(state) = self.slots.get(slot as usize) else { return };
        let mut found: Vec<Violation> = Vec::new();
        if let Some(w) = state.last_write {
            if !self.ordered_before(w.thread, w.epoch, thread) {
                found.push(Violation::AtomicPlainRace { block, slot, atomic: label, plain: w });
            }
        }
        for r in &state.readers {
            if !self.ordered_before(r.thread, r.epoch, thread) {
                found.push(Violation::AtomicPlainRace { block, slot, atomic: label, plain: *r });
            }
        }
        self.slots[slot as usize].last_atomic = Some(label);
        for v in found {
            self.report(v);
        }
    }

    /// Whether a write to `slot` lands outside the writer's group slice of
    /// the declared sharing layout.
    fn check_overflow(&self, thread: u32, slot: u32) -> Option<Violation> {
        let l = self.sharing?;
        // Only the partitioned group region is owner-checked; the team
        // slice and memory outside the sharing space are unrestricted.
        let group_region = l.base + l.team_slots;
        if slot < group_region || slot >= l.base + l.total_slots {
            return None;
        }
        // The extra team-main warp (generic mode) is not in any group.
        let writer_group = thread / l.simdlen.max(1);
        if writer_group >= l.num_groups {
            return None;
        }
        let idx = slot - group_region;
        let fits = l.group_slots > 0
            && idx / l.group_slots == writer_group
            && idx < l.num_groups * l.group_slots;
        if fits {
            return None;
        }
        Some(Violation::SharingOverflow {
            block: self.block,
            slot,
            thread,
            group: writer_group,
            group_slots: l.group_slots,
        })
    }

    // ----- cross-team fallback accesses --------------------------------

    /// Record one global-memory access by `thread`. Only accesses landing
    /// in *another* block's fallback arena are kept (capped, deduplicated);
    /// the launch merge step joins them against the owners' fallback
    /// ranges to flag cross-team races on leaked allocations.
    #[inline]
    pub fn record_global_access(&mut self, thread: u32, addr: u64, write: bool) {
        use crate::mem::global::{ARENA_BASE, ARENA_STRIDE};
        if addr < ARENA_BASE {
            return;
        }
        let owner = ((addr - ARENA_BASE) / ARENA_STRIDE) as u32;
        if owner == self.block {
            return;
        }
        let touch = ForeignTouch { owner, thread, addr, write };
        if self.foreign.len() < MAX_FOREIGN && !self.foreign.contains(&touch) {
            self.foreign.push(touch);
        }
    }

    /// Drain the recorded foreign-arena touches (launch merge step).
    pub fn take_foreign(&mut self) -> Vec<ForeignTouch> {
        std::mem::take(&mut self.foreign)
    }

    // ----- sharing-space fallback lifecycle ----------------------------

    /// A sharing-space global fallback allocation happened.
    pub fn on_fallback_alloc(&mut self) {
        self.outstanding_fallbacks += 1;
    }

    /// A sharing-space global fallback allocation was freed.
    pub fn on_fallback_free(&mut self) {
        self.outstanding_fallbacks = self.outstanding_fallbacks.saturating_sub(1);
    }

    /// End of the block (`__target_deinit` has run): check for leaked
    /// fallbacks and return all findings.
    pub fn finish(mut self) -> Vec<Violation> {
        if self.outstanding_fallbacks > 0 {
            let v = Violation::LeakedFallback {
                block: self.block,
                outstanding: self.outstanding_fallbacks,
            };
            self.report(v);
        }
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn san() -> Sanitizer {
        Sanitizer::new(0, 2, 32, 256)
    }

    #[test]
    fn same_epoch_write_write_races() {
        let mut s = san();
        s.record_smem(0, 10, true);
        s.record_smem(1, 10, true);
        let v = s.finish();
        assert!(matches!(v[0], Violation::SharedMemRace { slot: 10, .. }), "{v:?}");
    }

    #[test]
    fn sync_separates_accesses() {
        let mut s = san();
        s.record_smem(0, 10, true);
        s.on_warp_sync(0);
        s.record_smem(1, 10, false); // reader in a later epoch: clean
        assert!(s.finish().is_empty());
    }

    #[test]
    fn masked_sync_only_synchronizes_participants() {
        let mut s = san();
        s.record_smem(0, 10, true);
        // Sync lanes 8..16 only; lane 1 (thread 1) stays in the old epoch.
        s.on_warp_sync_masked(0, LaneMask::contiguous(8, 8), LaneMask::contiguous(8, 8));
        s.record_smem(1, 10, false);
        let v = s.finish();
        assert!(matches!(v[0], Violation::SharedMemRace { .. }), "{v:?}");
    }

    #[test]
    fn block_barrier_synchronizes_everyone() {
        let mut s = san();
        s.record_smem(0, 3, true);
        s.on_block_barrier();
        s.record_smem(40, 3, false); // warp 1 lane 8, new epoch
        assert!(s.finish().is_empty());
    }

    #[test]
    fn missing_warp_at_block_barrier() {
        let mut s = san();
        s.barrier_arrive(0);
        s.on_block_barrier();
        let v = s.finish();
        assert_eq!(
            v[0],
            Violation::BarrierDivergence { block: 0, kind: BarrierKind::Block, missing: vec![1] }
        );
    }

    #[test]
    fn unannounced_barriers_are_not_checked() {
        let mut s = san();
        s.on_block_barrier();
        assert!(s.finish().is_empty());
    }

    #[test]
    fn divergent_masked_sync() {
        let mut s = san();
        s.on_warp_sync_masked(1, LaneMask::contiguous(0, 8), LaneMask::contiguous(0, 4));
        let v = s.finish();
        assert_eq!(
            v[0],
            Violation::BarrierDivergence {
                block: 0,
                kind: BarrierKind::WarpSync { warp: 1 },
                missing: vec![4, 5, 6, 7],
            }
        );
    }

    #[test]
    fn unwritten_sharing_read_flagged_inside_region_only() {
        let mut s = san();
        s.declare_sharing(SharingLayout {
            base: 0,
            total_slots: 64,
            team_slots: 8,
            group_slots: 4,
            num_groups: 8,
            simdlen: 8,
        });
        s.record_smem(0, 200, false); // outside the sharing space: fine
        s.record_smem(0, 12, false); // inside: never written
        let v = s.finish();
        assert_eq!(v, vec![Violation::UnwrittenRead { block: 0, slot: 12, thread: 0 }]);
    }

    #[test]
    fn overflow_write_outside_group_slice() {
        let mut s = san();
        s.declare_sharing(SharingLayout {
            base: 0,
            total_slots: 64,
            team_slots: 8,
            group_slots: 4,
            num_groups: 8,
            simdlen: 4,
        });
        // Thread 0 is group 0: slots 8..12. Slot 13 belongs to group 1.
        s.record_smem(0, 9, true);
        s.record_smem(0, 13, true);
        let v = s.finish();
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::SharingOverflow { slot: 13, group: 0, .. }), "{v:?}");
    }

    #[test]
    fn zero_slot_slices_always_overflow() {
        let mut s = san();
        s.declare_sharing(SharingLayout {
            base: 0,
            total_slots: 32,
            team_slots: 32,
            group_slots: 0,
            num_groups: 64,
            simdlen: 2,
        });
        // The group region is empty; no group-region slot exists, so no
        // write can be attributed — but any write past the team slice of a
        // *larger* space is an overflow:
        s.declare_sharing(SharingLayout {
            base: 0,
            total_slots: 64,
            team_slots: 32,
            group_slots: 0,
            num_groups: 64,
            simdlen: 2,
        });
        s.record_smem(0, 40, true);
        let v = s.finish();
        assert!(matches!(v[0], Violation::SharingOverflow { group_slots: 0, .. }), "{v:?}");
    }

    #[test]
    fn leaked_fallback_reported_at_finish() {
        let mut s = san();
        s.on_fallback_alloc();
        s.on_fallback_alloc();
        s.on_fallback_free();
        let v = s.finish();
        assert_eq!(v, vec![Violation::LeakedFallback { block: 0, outstanding: 1 }]);
    }

    #[test]
    fn balanced_fallbacks_are_clean() {
        let mut s = san();
        s.on_fallback_alloc();
        s.on_fallback_free();
        assert!(s.finish().is_empty());
    }

    #[test]
    fn region_redeclare_clears_history() {
        let mut s = san();
        s.declare_sharing(SharingLayout {
            base: 0,
            total_slots: 64,
            team_slots: 8,
            group_slots: 4,
            num_groups: 8,
            simdlen: 8,
        });
        s.record_smem(0, 9, true);
        // New region: the old write is forgotten; a same-epoch write by a
        // different thread is not a race against it.
        s.declare_sharing(SharingLayout {
            base: 0,
            total_slots: 64,
            team_slots: 8,
            group_slots: 4,
            num_groups: 8,
            simdlen: 8,
        });
        s.record_smem(1, 9, true);
        assert!(s.finish().is_empty());
    }

    #[test]
    fn violation_cap_counts_drops() {
        let mut s = san();
        for i in 0..(MAX_VIOLATIONS as u32 + 10) {
            s.record_smem(0, 5, true);
            s.record_smem(1, 5, true); // WW race each round (same epoch)
            let _ = i;
        }
        assert!(s.dropped() > 0);
        assert_eq!(s.finish().len(), MAX_VIOLATIONS);
    }

    #[test]
    fn display_is_readable() {
        let v = Violation::LeakedFallback { block: 3, outstanding: 2 };
        assert!(format!("{v}").contains("leaked"));
        let fp = Violation::FootprintViolation {
            block: 1,
            func: "seq #0".into(),
            detail: "undeclared global write".into(),
        };
        assert!(format!("{fp}").contains("footprint"));
    }

    #[test]
    fn atomic_vs_plain_unsynchronized_races() {
        let mut s = san();
        s.record_smem(0, 7, true); // plain write
        s.record_smem_atomic(1, 7); // same epoch: atomic/plain race
        let v = s.finish();
        assert!(
            matches!(v[0], Violation::AtomicPlainRace { slot: 7, .. }),
            "expected atomic/plain race, got {v:?}"
        );
    }

    #[test]
    fn plain_after_unordered_atomic_races() {
        let mut s = san();
        s.record_smem_atomic(0, 7);
        s.record_smem(1, 7, false); // plain read, same epoch
        let v = s.finish();
        assert!(matches!(v[0], Violation::AtomicPlainRace { .. }), "{v:?}");
    }

    #[test]
    fn atomics_never_race_with_each_other() {
        let mut s = san();
        s.record_smem_atomic(0, 7);
        s.record_smem_atomic(1, 7);
        s.record_smem_atomic(40, 7); // other warp, same epoch
        assert!(s.finish().is_empty());
    }

    #[test]
    fn barrier_separates_atomic_and_plain() {
        let mut s = san();
        s.record_smem_atomic(0, 7);
        s.on_block_barrier();
        s.record_smem(40, 7, false); // ordered after the atomic: clean
        assert!(s.finish().is_empty());
    }

    #[test]
    fn read_after_only_atomics_is_not_unwritten() {
        let mut s = san();
        s.declare_sharing(SharingLayout {
            base: 0,
            total_slots: 64,
            team_slots: 8,
            group_slots: 4,
            num_groups: 8,
            simdlen: 8,
        });
        // Slot 8 is in thread 0's own group slice (group 0 owns 8..12).
        s.record_smem_atomic(0, 8);
        s.on_block_barrier();
        s.record_smem(1, 8, false);
        assert!(s.finish().is_empty());
    }

    #[test]
    fn report_external_surfaces_in_findings() {
        let mut s = san();
        s.report_external(Violation::FootprintViolation {
            block: 0,
            func: "seq #1".into(),
            detail: "undeclared atomic".into(),
        });
        let v = s.finish();
        assert!(matches!(v[0], Violation::FootprintViolation { .. }));
    }

    #[test]
    fn no_quadratic_allocation_without_partial_syncs() {
        // Regression for the eager `nwarps * ws^2` table: a kernel that
        // only ever uses full warp syncs and block barriers must keep the
        // sync history at O(warps) words.
        let nwarps = 32u32;
        let ws = 32u32;
        let mut s = Sanitizer::new(0, nwarps, ws, 256);
        assert_eq!(s.sync_words(), nwarps as usize);
        for w in 0..nwarps {
            s.on_warp_sync(w);
            s.record_smem(w * ws, (w % 8) * 8, true);
        }
        s.on_block_barrier();
        for w in 0..nwarps {
            s.on_warp_sync(w);
        }
        assert_eq!(s.sync_words(), nwarps as usize, "full syncs must not inflate");
        assert_eq!(s.pairwise_tables(), 0);
        assert!((s.sync_words() as u32) < nwarps * ws * ws / 100);
    }

    #[test]
    fn partial_masked_sync_inflates_only_its_warp() {
        let mut s = Sanitizer::new(0, 4, 32, 256);
        s.on_warp_sync_masked(2, LaneMask::contiguous(0, 16), LaneMask::contiguous(0, 16));
        // One warp inflated: 4 scalars + one 32x32 table.
        assert_eq!(s.pairwise_tables(), 1);
        assert_eq!(s.sync_words(), 4 + 32 * 32);
        // Repeat partial syncs on the same warp reuse the table.
        s.on_warp_sync_masked(2, LaneMask::contiguous(16, 16), LaneMask::contiguous(16, 16));
        assert_eq!(s.pairwise_tables(), 1);
    }

    /// Drive an access/sync script through both representations and demand
    /// identical findings — the adaptive table must be semantically
    /// indistinguishable from the dense baseline.
    #[test]
    fn adaptive_and_dense_agree() {
        let script = |s: &mut Sanitizer| {
            s.record_smem(0, 10, true);
            s.record_smem(33, 10, true); // cross-warp, unordered: race
            s.on_warp_sync(0);
            s.record_smem(1, 10, false); // same-warp after full sync: clean
            s.on_warp_sync_masked(0, LaneMask::contiguous(0, 8), LaneMask::contiguous(0, 8));
            s.record_smem(2, 10, true); // participant of partial sync: clean
            s.record_smem(12, 10, true); // non-participant: races with t2
            s.on_block_barrier();
            s.record_smem(40, 10, false); // after block barrier: clean
        };
        let mut a = Sanitizer::new(0, 2, 32, 256);
        let mut d = Sanitizer::new_dense(0, 2, 32, 256);
        script(&mut a);
        script(&mut d);
        let (va, vd) = (a.finish(), d.finish());
        assert_eq!(format!("{va:?}"), format!("{vd:?}"));
        assert!(!va.is_empty());
    }

    #[test]
    fn foreign_touches_recorded_and_deduped() {
        use crate::mem::global::{ARENA_BASE, ARENA_STRIDE};
        let mut s = san(); // block 0
        s.record_global_access(3, 0x1000, true); // ordinary heap: ignored
        s.record_global_access(3, ARENA_BASE + 8, true); // own arena: ignored
        let foreign = ARENA_BASE + 2 * ARENA_STRIDE + 16; // block 2's arena
        s.record_global_access(3, foreign, true);
        s.record_global_access(3, foreign, true); // duplicate
        s.record_global_access(4, foreign, false); // read, distinct record
        let got = s.take_foreign();
        assert_eq!(
            got,
            vec![
                ForeignTouch { owner: 2, thread: 3, addr: foreign, write: true },
                ForeignTouch { owner: 2, thread: 4, addr: foreign, write: false },
            ]
        );
        assert!(s.take_foreign().is_empty(), "take drains");
        assert!(s.finish().is_empty(), "foreign touches are not per-block violations");
    }

    #[test]
    fn cross_team_violation_displays() {
        let v = Violation::CrossTeamFallbackRace { owner: 1, accessor: 2, thread: 7, addr: 0x40 };
        let txt = format!("{v}");
        assert!(txt.contains("cross-team"), "{txt}");
        assert!(txt.contains("block 1"), "{txt}");
    }
}
