//! # gpu-sim — a deterministic SIMT GPU simulator
//!
//! This crate is the hardware substrate for the `simt-omp` reproduction of
//! *"Implementing OpenMP's SIMD Directive in LLVM's GPU Runtime"* (ICPP 2023).
//! The paper evaluates on NVIDIA A100 GPUs; this environment has no GPU, so
//! every architectural ingredient the paper's runtime depends on is simulated
//! here:
//!
//! * **streaming multiprocessors (SMs)**, **thread blocks**, **warps** of 32
//!   (or 64, for AMD-like wavefronts) lanes — see [`arch`];
//! * **lockstep (SIMT) execution** of per-lane programs with max-combining of
//!   lane costs and memory-coalescing analysis — see [`exec`];
//! * **global memory** with typed device buffers and 64-bit pointer encoding
//!   (the runtime's `void**` payloads) — see [`mem`];
//! * **shared memory** per block with a bump allocator — see [`mem::shared`];
//! * **atomics** with intra-warp address-conflict serialization — see
//!   [`exec::Lane::atomic_add_f64`];
//! * **warp-level barriers with lane masks** and **block-level barriers** —
//!   see [`exec::TeamCtx::warp_sync`] / [`exec::TeamCtx::block_barrier`];
//! * an **analytic cycle cost model** (issue / memory-throughput / latency
//!   roofline per block, greedy block→SM makespan with occupancy limits) —
//!   see [`cost`] and [`sched`];
//! * **simtcheck**, a runtime sanitizer validating barrier participation,
//!   shared-memory race freedom, and sharing-space usage — see [`sanitize`]
//!   and [`launch::Device::enable_sanitizer`].
//!
//! Execution is fully deterministic: independent blocks may execute
//! concurrently on host worker threads (`SIMT_SIM_THREADS`, see [`sched`]),
//! but every block's work is self-contained, results merge in block-id
//! order, and all cost accounting is integer cycle arithmetic — so a given
//! kernel + workload always produces the *same* simulated cycle count at
//! any thread count. Wall time is irrelevant; the benchmarks report
//! simulated cycles.
//!
//! The crate is intentionally independent of OpenMP concepts; the OpenMP
//! device runtime lives in `simt-omp-core` on top of these primitives.

pub mod arch;
pub mod cost;
pub mod exec;
pub mod launch;
pub mod mask;
pub mod mem;
pub mod sanitize;
pub mod sched;
pub mod stats;
pub mod trace;

pub use arch::{ArchId, ArchRegistry, CacheGeom, DeviceArch, Vendor};
pub use exec::{BankAcc, DispatchKind, Lane, ObservedEffects, TeamCtx};
pub use launch::{Device, LaunchConfig, LaunchError};
pub use mask::LaneMask;
pub use mem::global::{FallbackRange, GlobalMem, GlobalView, MemCheckpoint};
pub use mem::hier::{MemModel, MEM_MODEL_ENV};
pub use mem::ptr::{DPtr, Slot};
pub use mem::shared::SharedMem;
pub use sanitize::{ForeignTouch, Sanitizer, SharingLayout, Violation};
pub use stats::{BlockProfile, LaunchStats, MemStats, Resource, ResourceCycles};
pub use trace::{Trace, TraceEvent};
