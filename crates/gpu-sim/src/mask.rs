//! Lane masks: bit-sets over the lanes of a warp (up to 64 lanes so that
//! AMD-style 64-wide wavefronts fit).
//!
//! The paper's runtime identifies the threads of a SIMD group inside their
//! warp with a bit-mask (`simdmask`, §5.1) and synchronizes them with a
//! masked warp-level barrier (`synchronizeWarp(simdmask())`). This module is
//! the mask algebra those operations are built on.

use std::fmt;

/// A set of lanes within a warp, one bit per lane (bit `i` = lane `i`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LaneMask(pub u64);

impl LaneMask {
    /// The empty mask.
    pub const EMPTY: LaneMask = LaneMask(0);

    /// Mask of the full warp for a given warp width.
    ///
    /// # Panics
    /// Panics if `warp_size` is 0 or greater than 64.
    #[inline]
    pub fn full(warp_size: u32) -> LaneMask {
        assert!((1..=64).contains(&warp_size), "warp size out of range");
        if warp_size == 64 {
            LaneMask(u64::MAX)
        } else {
            LaneMask((1u64 << warp_size) - 1)
        }
    }

    /// Mask containing a single lane.
    #[inline]
    pub fn single(lane: u32) -> LaneMask {
        assert!(lane < 64);
        LaneMask(1u64 << lane)
    }

    /// Contiguous range of lanes `[start, start + len)`.
    ///
    /// This is the shape of a SIMD group mask: groups are contiguous runs of
    /// adjacent lanes in the same warp (paper §5.1).
    #[inline]
    pub fn contiguous(start: u32, len: u32) -> LaneMask {
        assert!(start + len <= 64, "mask range exceeds 64 lanes");
        if len == 0 {
            return LaneMask::EMPTY;
        }
        let ones = if len == 64 { u64::MAX } else { (1u64 << len) - 1 };
        LaneMask(ones << start)
    }

    /// Number of lanes in the mask.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True if no lanes are set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if lane `lane` is in the mask.
    #[inline]
    pub fn contains(self, lane: u32) -> bool {
        lane < 64 && (self.0 >> lane) & 1 == 1
    }

    /// Lowest-numbered lane in the mask (the *leader* of a masked cohort),
    /// or `None` for the empty mask.
    #[inline]
    pub fn leader(self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros())
        }
    }

    /// Set-intersection.
    #[inline]
    pub fn and(self, other: LaneMask) -> LaneMask {
        LaneMask(self.0 & other.0)
    }

    /// Set-union.
    #[inline]
    pub fn or(self, other: LaneMask) -> LaneMask {
        LaneMask(self.0 | other.0)
    }

    /// Lanes in `self` but not in `other`.
    #[inline]
    pub fn minus(self, other: LaneMask) -> LaneMask {
        LaneMask(self.0 & !other.0)
    }

    /// Iterate over the lanes in ascending order.
    pub fn iter(self) -> impl Iterator<Item = u32> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let lane = bits.trailing_zeros();
                bits &= bits - 1;
                Some(lane)
            }
        })
    }

    /// Split a full-warp mask into `n` equal contiguous group masks.
    ///
    /// This mirrors how the runtime carves a warp into SIMD groups: the warp
    /// is divided evenly, every group is the same size, and groups never span
    /// warps (paper §5.1).
    ///
    /// # Panics
    /// Panics if `group_size` does not divide `warp_size`.
    pub fn groups_of(warp_size: u32, group_size: u32) -> Vec<LaneMask> {
        assert!(group_size >= 1);
        assert!(
            warp_size.is_multiple_of(group_size),
            "group size {group_size} must divide warp size {warp_size}"
        );
        (0..warp_size / group_size)
            .map(|g| LaneMask::contiguous(g * group_size, group_size))
            .collect()
    }
}

impl fmt::Debug for LaneMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LaneMask({:#018x})", self.0)
    }
}

impl std::ops::BitAnd for LaneMask {
    type Output = LaneMask;
    fn bitand(self, rhs: Self) -> Self {
        self.and(rhs)
    }
}

impl std::ops::BitOr for LaneMask {
    type Output = LaneMask;
    fn bitor(self, rhs: Self) -> Self {
        self.or(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_masks() {
        assert_eq!(LaneMask::full(32).0, 0xffff_ffff);
        assert_eq!(LaneMask::full(64).0, u64::MAX);
        assert_eq!(LaneMask::full(1).0, 1);
        assert_eq!(LaneMask::full(32).count(), 32);
    }

    #[test]
    #[should_panic]
    fn full_mask_rejects_zero() {
        LaneMask::full(0);
    }

    #[test]
    #[should_panic]
    fn full_mask_rejects_oversize() {
        LaneMask::full(65);
    }

    #[test]
    fn contiguous_ranges() {
        assert_eq!(LaneMask::contiguous(0, 8).0, 0xff);
        assert_eq!(LaneMask::contiguous(8, 8).0, 0xff00);
        assert_eq!(LaneMask::contiguous(0, 0), LaneMask::EMPTY);
        assert_eq!(LaneMask::contiguous(0, 64).0, u64::MAX);
        assert_eq!(LaneMask::contiguous(62, 2).count(), 2);
    }

    #[test]
    fn leader_is_lowest_lane() {
        assert_eq!(LaneMask::contiguous(8, 8).leader(), Some(8));
        assert_eq!(LaneMask::single(31).leader(), Some(31));
        assert_eq!(LaneMask::EMPTY.leader(), None);
    }

    #[test]
    fn membership_and_iteration() {
        let m = LaneMask::contiguous(4, 4);
        assert!(m.contains(4) && m.contains(7));
        assert!(!m.contains(3) && !m.contains(8));
        assert!(!m.contains(64));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![4, 5, 6, 7]);
    }

    #[test]
    fn set_algebra() {
        let a = LaneMask::contiguous(0, 8);
        let b = LaneMask::contiguous(4, 8);
        assert_eq!(a.and(b), LaneMask::contiguous(4, 4));
        assert_eq!(a.or(b), LaneMask::contiguous(0, 12));
        assert_eq!(a.minus(b), LaneMask::contiguous(0, 4));
        assert_eq!((a & b).count(), 4);
        assert_eq!((a | b).count(), 12);
    }

    #[test]
    fn warp_partitions_into_groups() {
        let groups = LaneMask::groups_of(32, 8);
        assert_eq!(groups.len(), 4);
        // Groups are disjoint and cover the warp.
        let mut union = LaneMask::EMPTY;
        for (i, g) in groups.iter().enumerate() {
            assert_eq!(g.count(), 8);
            assert_eq!(g.leader(), Some(i as u32 * 8));
            assert!(union.and(*g).is_empty(), "groups overlap");
            union = union.or(*g);
        }
        assert_eq!(union, LaneMask::full(32));
    }

    #[test]
    fn group_size_one_is_per_lane() {
        let groups = LaneMask::groups_of(32, 1);
        assert_eq!(groups.len(), 32);
        assert!(groups.iter().all(|g| g.count() == 1));
    }

    #[test]
    #[should_panic]
    fn groups_must_divide_warp() {
        LaneMask::groups_of(32, 5);
    }
}
