//! Simulated global (device) memory.
//!
//! Global memory is a set of typed segments. Each segment gets a synthetic
//! byte address range so that the cost model can analyze coalescing: the
//! address of element `i` of a segment is `base + i * size_of::<T>()`, and
//! bases are spaced so distinct segments never share a 32-byte sector.
//!
//! Besides user buffers, the OpenMP runtime allocates *fallback* blocks here
//! when a SIMD group's shared-memory variable-sharing slice overflows
//! (paper §5.3.1); those go through the same API and are freed at the end of
//! the parallel region.

use super::pod::{AnyBuf, DevValue};
use super::ptr::DPtr;

/// Alignment of segment base addresses (also guarantees sector alignment).
const SEG_ALIGN: u64 = 256;

struct Segment {
    base: u64,
    data: Option<Box<dyn AnyBuf>>,
}

/// The device's global memory: typed segments with synthetic addresses.
#[derive(Default)]
pub struct GlobalMem {
    segs: Vec<Segment>,
    next_base: u64,
    live_bytes: u64,
    peak_bytes: u64,
    alloc_count: u64,
    /// Sectors touched since the last launch began — distinguishes
    /// compulsory DRAM traffic from L2-served re-reads.
    touched: std::collections::HashSet<u64>,
}

impl GlobalMem {
    /// Create an empty global memory.
    pub fn new() -> GlobalMem {
        GlobalMem { next_base: SEG_ALIGN, ..Default::default() }
    }

    fn push_segment<T: DevValue>(&mut self, data: Vec<T>) -> DPtr<T> {
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        let base = self.next_base;
        self.next_base += bytes.div_ceil(SEG_ALIGN).max(1) * SEG_ALIGN;
        let seg = self.segs.len() as u32;
        self.segs.push(Segment { base, data: Some(Box::new(data)) });
        self.live_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
        self.alloc_count += 1;
        DPtr::new(seg, 0)
    }

    /// Allocate a segment initialized from host data (the H2D copy itself is
    /// charged by the host runtime, not here).
    pub fn alloc_from<T: DevValue>(&mut self, data: &[T]) -> DPtr<T> {
        self.push_segment(data.to_vec())
    }

    /// Allocate a zero-initialized segment of `n` elements.
    pub fn alloc_zeroed<T: DevValue + Default>(&mut self, n: usize) -> DPtr<T> {
        self.push_segment(vec![T::default(); n])
    }

    /// Free a segment. Accessing it afterwards panics (simulated
    /// use-after-free detection).
    pub fn free<T: DevValue>(&mut self, p: DPtr<T>) {
        let seg = self
            .segs
            .get_mut(p.seg as usize)
            .unwrap_or_else(|| panic!("free of invalid segment {}", p.seg));
        let data = seg.data.take().unwrap_or_else(|| panic!("double free of segment {}", p.seg));
        self.live_bytes -= (data.len() * data.elem_size()) as u64;
    }

    fn buf<T: DevValue>(&self, seg: u32) -> &Vec<T> {
        let s = self
            .segs
            .get(seg as usize)
            .unwrap_or_else(|| panic!("access to invalid segment {seg}"));
        let data = s.data.as_ref().unwrap_or_else(|| panic!("use after free of segment {seg}"));
        data.as_any().downcast_ref::<Vec<T>>().unwrap_or_else(|| {
            panic!("type confusion on segment {seg}: expected Vec<{}>", std::any::type_name::<T>())
        })
    }

    fn buf_mut<T: DevValue>(&mut self, seg: u32) -> &mut Vec<T> {
        let s = self
            .segs
            .get_mut(seg as usize)
            .unwrap_or_else(|| panic!("access to invalid segment {seg}"));
        let data = s.data.as_mut().unwrap_or_else(|| panic!("use after free of segment {seg}"));
        data.as_any_mut().downcast_mut::<Vec<T>>().unwrap_or_else(|| {
            panic!("type confusion on segment {seg}: expected Vec<{}>", std::any::type_name::<T>())
        })
    }

    /// Read element `idx` relative to pointer `p` (functional access, no
    /// cycle cost — kernels charge through their `Lane` instead).
    #[inline]
    pub fn read<T: DevValue>(&self, p: DPtr<T>, idx: u64) -> T {
        let buf = self.buf::<T>(p.seg);
        let i = (p.off + idx) as usize;
        assert!(i < buf.len(), "device OOB read: idx {i} >= len {}", buf.len());
        buf[i]
    }

    /// Write element `idx` relative to pointer `p`.
    #[inline]
    pub fn write<T: DevValue>(&mut self, p: DPtr<T>, idx: u64, v: T) {
        let buf = self.buf_mut::<T>(p.seg);
        let i = (p.off + idx) as usize;
        assert!(i < buf.len(), "device OOB write: idx {i} >= len {}", buf.len());
        buf[i] = v;
    }

    /// Synthetic byte address of element `idx` relative to `p`, used by the
    /// coalescing analysis.
    #[inline]
    pub fn addr_of<T: DevValue>(&self, p: DPtr<T>, idx: u64) -> u64 {
        let s = &self.segs[p.seg as usize];
        s.base + (p.off + idx) * std::mem::size_of::<T>() as u64
    }

    /// Number of elements in the segment behind `p`, counted from `p`'s
    /// offset.
    pub fn len_of<T: DevValue>(&self, p: DPtr<T>) -> usize {
        self.buf::<T>(p.seg).len() - p.off as usize
    }

    /// Copy `len` elements starting at `p` back to the host.
    pub fn read_slice<T: DevValue>(&self, p: DPtr<T>, len: usize) -> Vec<T> {
        let buf = self.buf::<T>(p.seg);
        let start = p.off as usize;
        assert!(start + len <= buf.len(), "device OOB slice read");
        buf[start..start + len].to_vec()
    }

    /// Overwrite `data.len()` elements starting at `p` from host data.
    pub fn write_slice<T: DevValue>(&mut self, p: DPtr<T>, data: &[T]) {
        let buf = self.buf_mut::<T>(p.seg);
        let start = p.off as usize;
        assert!(start + data.len() <= buf.len(), "device OOB slice write");
        buf[start..start + data.len()].copy_from_slice(data);
    }

    /// Bytes currently allocated.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// High-water mark of allocated bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Total number of allocations performed.
    pub fn alloc_count(&self) -> u64 {
        self.alloc_count
    }

    /// Record a sector access; returns `true` on the first touch since the
    /// last [`Self::reset_touched`] (compulsory DRAM traffic — later misses
    /// of the same sector are served by the device-wide L2).
    #[inline]
    pub fn first_touch(&mut self, sector: u64) -> bool {
        self.touched.insert(sector)
    }

    /// Clear the first-touch tracker (called at launch start).
    pub fn reset_touched(&mut self) {
        self.touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut g = GlobalMem::new();
        let p = g.alloc_from(&[1.0f64, 2.0, 3.0]);
        assert_eq!(g.read(p, 0), 1.0);
        assert_eq!(g.read(p, 2), 3.0);
        g.write(p, 1, 9.5);
        assert_eq!(g.read_slice(p, 3), vec![1.0, 9.5, 3.0]);
    }

    #[test]
    fn zeroed_alloc() {
        let mut g = GlobalMem::new();
        let p = g.alloc_zeroed::<u32>(5);
        assert_eq!(g.read_slice(p, 5), vec![0; 5]);
        assert_eq!(g.len_of(p), 5);
    }

    #[test]
    fn addresses_are_disjoint_and_typed() {
        let mut g = GlobalMem::new();
        let a = g.alloc_zeroed::<f64>(10);
        let b = g.alloc_zeroed::<f64>(10);
        // Consecutive elements are 8 bytes apart.
        assert_eq!(g.addr_of(a, 1) - g.addr_of(a, 0), 8);
        // Segments never share a sector.
        let last_a = g.addr_of(a, 9) + 8;
        assert!(g.addr_of(b, 0) / 32 > (last_a - 1) / 32);
    }

    #[test]
    fn pointer_offsetting() {
        let mut g = GlobalMem::new();
        let p = g.alloc_from(&[10u32, 20, 30, 40]);
        let q = p.add(2);
        assert_eq!(g.read(q, 0), 30);
        assert_eq!(g.len_of(q), 2);
    }

    #[test]
    #[should_panic(expected = "OOB")]
    fn oob_read_panics() {
        let mut g = GlobalMem::new();
        let p = g.alloc_zeroed::<f64>(3);
        g.read(p, 3);
    }

    #[test]
    #[should_panic(expected = "type confusion")]
    fn type_confusion_is_detected() {
        let mut g = GlobalMem::new();
        let p = g.alloc_zeroed::<f64>(3);
        let bits = p.to_bits();
        let q: DPtr<u32> = DPtr::from_bits(bits);
        g.read(q, 0);
    }

    #[test]
    #[should_panic(expected = "use after free")]
    fn use_after_free_is_detected() {
        let mut g = GlobalMem::new();
        let p = g.alloc_zeroed::<f64>(3);
        g.free(p);
        g.read(p, 0);
    }

    #[test]
    fn accounting_tracks_live_and_peak() {
        let mut g = GlobalMem::new();
        let p = g.alloc_zeroed::<u64>(100); // 800 bytes
        assert_eq!(g.live_bytes(), 800);
        let q = g.alloc_zeroed::<u8>(10);
        assert_eq!(g.live_bytes(), 810);
        g.free(p);
        assert_eq!(g.live_bytes(), 10);
        assert_eq!(g.peak_bytes(), 810);
        g.free(q);
        assert_eq!(g.live_bytes(), 0);
        assert_eq!(g.alloc_count(), 2);
    }
}
