//! Simulated global (device) memory, shareable across concurrently
//! executing thread blocks.
//!
//! Global memory is a set of typed segments. Each segment gets a synthetic
//! byte address range so that the cost model can analyze coalescing: the
//! address of element `i` of a segment is `base + i * size_of::<T>()`, and
//! bases are spaced so distinct segments never share a 32-byte sector.
//!
//! Since the parallel block engine runs blocks on several host threads,
//! global memory is the one genuinely shared resource of a launch and is
//! built for `&self` access throughout:
//!
//! * element storage is 64-bit words behind relaxed atomics (the
//!   [`DevValue`] codec maps every element type onto words), so plain
//!   reads/writes never take a lock;
//! * the segment table is append-only and snapshot-swapped: allocation
//!   clones the `Arc` table under a short mutex, while accessors go through
//!   a cached [`GlobalView`] snapshot refreshed only when a lookup misses;
//! * the first-touch (compulsory DRAM) tracker is striped by sector across
//!   [`TOUCH_STRIPES`] mutexes — insert-exactly-once semantics keep the
//!   *sum* of first touches deterministic under any block interleaving;
//! * device-side fallback allocations land in per-block **arenas** at
//!   deterministic synthetic addresses (`ARENA_BASE + block_id *
//!   ARENA_STRIDE`), so cache-set hashing and coalescing never depend on
//!   cross-block allocation order.
//!
//! Besides user buffers, the OpenMP runtime allocates *fallback* blocks here
//! when a SIMD group's shared-memory variable-sharing slice overflows
//! (paper §5.3.1); those go through the same API and are freed at the end of
//! the parallel region.

use std::any::TypeId;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use super::pod::DevValue;
use super::ptr::DPtr;

/// Alignment of segment base addresses (also guarantees sector alignment).
const SEG_ALIGN: u64 = 256;

/// Base synthetic address of the per-block fallback arenas. Host-side
/// allocations bump upward from low addresses and stay far below this.
pub(crate) const ARENA_BASE: u64 = 1 << 44;

/// Synthetic address space reserved per block arena (16 MiB of fallback
/// allocations per block — far beyond what a sharing space can spill).
pub(crate) const ARENA_STRIDE: u64 = 1 << 24;

/// Number of first-touch tracker stripes (overflow sectors beyond the dense
/// bitmap: per-block arenas and mid-launch allocations).
const TOUCH_STRIPES: usize = 64;

/// First-touch (compulsory DRAM) tracker for one launch. Host-segment
/// sectors — the overwhelming majority of kernel traffic — are tracked in a
/// dense lock-free bitmap sized at [`GlobalMem::reset_touched`] time;
/// sectors past the bitmap (fallback arenas at [`ARENA_BASE`], segments
/// allocated mid-launch) fall back to the original striped hash sets.
/// Either way inserts are exactly-once across blocks, so per-launch totals
/// stay interleaving-independent.
pub(crate) struct TouchMap {
    /// Sectors `< limit` use the bitmap; the rest the stripes.
    limit: u64,
    bits: Vec<AtomicU64>,
    striped: Vec<Mutex<HashSet<u64>>>,
}

impl TouchMap {
    fn new(limit: u64) -> TouchMap {
        TouchMap {
            limit,
            bits: (0..limit.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            striped: (0..TOUCH_STRIPES).map(|_| Mutex::new(HashSet::new())).collect(),
        }
    }

    /// Record a sector touch; `true` exactly once per sector per launch.
    #[inline]
    pub(crate) fn first_touch(&self, sector: u64) -> bool {
        if sector < self.limit {
            let bit = 1u64 << (sector % 64);
            self.bits[(sector / 64) as usize].fetch_or(bit, Ordering::Relaxed) & bit == 0
        } else {
            lock(&self.striped[(sector as usize) % TOUCH_STRIPES]).insert(sector)
        }
    }
}

/// One typed segment: metadata plus word storage behind relaxed atomics.
pub(crate) struct Segment {
    base: u64,
    /// Elements in the segment.
    len: usize,
    /// Logical bytes per element (drives synthetic addressing).
    elem_bytes: usize,
    /// Storage words per element.
    elem_words: usize,
    type_id: TypeId,
    alive: AtomicBool,
    words: Vec<AtomicU64>,
}

impl Segment {
    fn check<T: DevValue>(&self, seg: u32) {
        if !self.alive.load(Ordering::Relaxed) {
            panic!("use after free of segment {seg}");
        }
        if self.type_id != TypeId::of::<T>() {
            panic!("type confusion on segment {seg}: expected Vec<{}>", std::any::type_name::<T>());
        }
    }

    #[inline]
    fn read<T: DevValue>(&self, seg: u32, i: usize) -> T {
        self.check::<T>(seg);
        assert!(i < self.len, "device OOB read: idx {i} >= len {}", self.len);
        let base = i * self.elem_words;
        T::load_words(&mut |j| self.words[base + j].load(Ordering::Relaxed))
    }

    #[inline]
    fn write<T: DevValue>(&self, seg: u32, i: usize, v: T) {
        self.check::<T>(seg);
        assert!(i < self.len, "device OOB write: idx {i} >= len {}", self.len);
        let base = i * self.elem_words;
        v.store_words(&mut |j, w| self.words[base + j].store(w, Ordering::Relaxed));
    }

    /// Atomic read-modify-write of the single storage word of element `i`.
    /// Only valid for 1-word element types (`f64`/`u64` atomics).
    #[inline]
    fn rmw_word<T: DevValue>(&self, seg: u32, i: usize, f: impl Fn(u64) -> u64) -> u64 {
        self.check::<T>(seg);
        assert!(i < self.len, "device OOB write: idx {i} >= len {}", self.len);
        debug_assert_eq!(self.elem_words, 1);
        self.words[i]
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |w| Some(f(w)))
            .unwrap_or_else(|w| w)
    }

    fn logical_bytes(&self) -> u64 {
        (self.len * self.elem_bytes) as u64
    }
}

type SegTable = Arc<Vec<Arc<Segment>>>;

struct Master {
    segs: SegTable,
    next_base: u64,
}

/// The device's global memory: typed segments with synthetic addresses,
/// shared by every concurrently executing block of a launch.
pub struct GlobalMem {
    master: Mutex<Master>,
    live_bytes: AtomicU64,
    peak_bytes: AtomicU64,
    alloc_count: AtomicU64,
    /// Sectors touched since the last launch began — distinguishes
    /// compulsory DRAM traffic from L2-served re-reads. Swapped wholesale at
    /// [`Self::reset_touched`]; views cache the `Arc` so the hot path never
    /// takes this lock.
    touched: Mutex<Arc<TouchMap>>,
}

impl Default for GlobalMem {
    fn default() -> GlobalMem {
        GlobalMem::new()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A panicking kernel (simulated OOB etc.) may poison a lock; the
    // tables themselves are never left half-updated, so keep going.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl GlobalMem {
    /// Create an empty global memory.
    pub fn new() -> GlobalMem {
        GlobalMem {
            master: Mutex::new(Master { segs: Arc::new(Vec::new()), next_base: SEG_ALIGN }),
            live_bytes: AtomicU64::new(0),
            peak_bytes: AtomicU64::new(0),
            alloc_count: AtomicU64::new(0),
            touched: Mutex::new(Arc::new(TouchMap::new(0))),
        }
    }

    /// Current segment-table snapshot (cheap `Arc` clone).
    pub(crate) fn snapshot(&self) -> SegTable {
        Arc::clone(&lock(&self.master).segs)
    }

    /// A block-scoped accessor with a cached table snapshot and this
    /// block's deterministic fallback arena.
    pub fn view(&self, block_id: u32) -> GlobalView<'_> {
        let arena = ARENA_BASE + block_id as u64 * ARENA_STRIDE;
        GlobalView {
            mem: self,
            snap: self.snapshot(),
            touch: Arc::clone(&lock(&self.touched)),
            cache_id: u32::MAX,
            cache_seg: None,
            arena_next: arena,
            arena_limit: arena + ARENA_STRIDE,
            arena_allocs: Vec::new(),
        }
    }

    fn push_segment<T: DevValue>(&self, data: &[T], base_override: Option<u64>) -> DPtr<T> {
        let mut words: Vec<AtomicU64> = Vec::with_capacity(data.len() * T::WORDS);
        words.resize_with(data.len() * T::WORDS, || AtomicU64::new(0));
        for (i, v) in data.iter().enumerate() {
            v.store_words(&mut |j, w| words[i * T::WORDS + j] = AtomicU64::new(w));
        }
        let bytes = std::mem::size_of_val(data) as u64;
        let mut m = lock(&self.master);
        let base = match base_override {
            Some(b) => b,
            None => {
                let b = m.next_base;
                m.next_base += bytes.div_ceil(SEG_ALIGN).max(1) * SEG_ALIGN;
                b
            }
        };
        let seg = m.segs.len() as u32;
        let mut table: Vec<Arc<Segment>> = m.segs.as_ref().clone();
        table.push(Arc::new(Segment {
            base,
            len: data.len(),
            elem_bytes: std::mem::size_of::<T>(),
            elem_words: T::WORDS,
            type_id: TypeId::of::<T>(),
            alive: AtomicBool::new(true),
            words,
        }));
        m.segs = Arc::new(table);
        drop(m);
        self.live_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.peak_bytes.fetch_max(self.live_bytes.load(Ordering::Relaxed), Ordering::Relaxed);
        self.alloc_count.fetch_add(1, Ordering::Relaxed);
        DPtr::new(seg, 0)
    }

    /// Allocate a segment initialized from host data (the H2D copy itself is
    /// charged by the host runtime, not here).
    pub fn alloc_from<T: DevValue>(&self, data: &[T]) -> DPtr<T> {
        self.push_segment(data, None)
    }

    /// Allocate a zero-initialized segment of `n` elements.
    pub fn alloc_zeroed<T: DevValue + Default>(&self, n: usize) -> DPtr<T> {
        self.push_segment(&vec![T::default(); n], None)
    }

    /// Free a segment. Accessing it afterwards panics (simulated
    /// use-after-free detection). The word storage is replaced by a
    /// tombstone so memory is reclaimed once outstanding block views drop
    /// their snapshots.
    pub fn free<T: DevValue>(&self, p: DPtr<T>) {
        let mut m = lock(&self.master);
        let seg = m
            .segs
            .get(p.seg as usize)
            .cloned()
            .unwrap_or_else(|| panic!("free of invalid segment {}", p.seg));
        if !seg.alive.swap(false, Ordering::Relaxed) {
            panic!("double free of segment {}", p.seg);
        }
        let mut table: Vec<Arc<Segment>> = m.segs.as_ref().clone();
        table[p.seg as usize] = Arc::new(Segment {
            base: seg.base,
            len: seg.len,
            elem_bytes: seg.elem_bytes,
            elem_words: seg.elem_words,
            type_id: seg.type_id,
            alive: AtomicBool::new(false),
            words: Vec::new(),
        });
        m.segs = Arc::new(table);
        drop(m);
        self.live_bytes.fetch_sub(seg.logical_bytes(), Ordering::Relaxed);
    }

    fn seg(&self, idx: u32) -> Arc<Segment> {
        lock(&self.master)
            .segs
            .get(idx as usize)
            .cloned()
            .unwrap_or_else(|| panic!("access to invalid segment {idx}"))
    }

    /// Read element `idx` relative to pointer `p` (functional access, no
    /// cycle cost — kernels charge through their `Lane` instead).
    #[inline]
    pub fn read<T: DevValue>(&self, p: DPtr<T>, idx: u64) -> T {
        self.seg(p.seg).read(p.seg, (p.off + idx) as usize)
    }

    /// Write element `idx` relative to pointer `p`.
    #[inline]
    pub fn write<T: DevValue>(&self, p: DPtr<T>, idx: u64, v: T) {
        self.seg(p.seg).write(p.seg, (p.off + idx) as usize, v);
    }

    /// Synthetic byte address of element `idx` relative to `p`, used by the
    /// coalescing analysis.
    #[inline]
    pub fn addr_of<T: DevValue>(&self, p: DPtr<T>, idx: u64) -> u64 {
        let s = self.seg(p.seg);
        s.base + (p.off + idx) * std::mem::size_of::<T>() as u64
    }

    /// Number of elements in the segment behind `p`, counted from `p`'s
    /// offset.
    pub fn len_of<T: DevValue>(&self, p: DPtr<T>) -> usize {
        let s = self.seg(p.seg);
        s.check::<T>(p.seg);
        s.len - p.off as usize
    }

    /// Copy `len` elements starting at `p` back to the host.
    pub fn read_slice<T: DevValue>(&self, p: DPtr<T>, len: usize) -> Vec<T> {
        let s = self.seg(p.seg);
        s.check::<T>(p.seg);
        let start = p.off as usize;
        assert!(start + len <= s.len, "device OOB slice read");
        (0..len).map(|i| s.read(p.seg, start + i)).collect()
    }

    /// Overwrite `data.len()` elements starting at `p` from host data.
    pub fn write_slice<T: DevValue>(&self, p: DPtr<T>, data: &[T]) {
        let s = self.seg(p.seg);
        s.check::<T>(p.seg);
        let start = p.off as usize;
        assert!(start + data.len() <= s.len, "device OOB slice write");
        for (i, v) in data.iter().enumerate() {
            s.write(p.seg, start + i, *v);
        }
    }

    /// Bytes currently allocated.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// High-water mark of allocated bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes.load(Ordering::Relaxed)
    }

    /// Total number of allocations performed.
    pub fn alloc_count(&self) -> u64 {
        self.alloc_count.load(Ordering::Relaxed)
    }

    /// Record a sector access; returns `true` on the first touch since the
    /// last [`Self::reset_touched`] (compulsory DRAM traffic — later misses
    /// of the same sector are served by the device-wide L2). Inserts are
    /// exactly-once across all blocks, so per-launch *totals* are
    /// interleaving-independent.
    #[inline]
    pub fn first_touch(&self, sector: u64) -> bool {
        let map = Arc::clone(&lock(&self.touched));
        map.first_touch(sector)
    }

    /// Clear the first-touch tracker (called at launch start). The fresh
    /// tracker's dense bitmap covers every sector index a host segment can
    /// produce under any cost-model sector size ≥ 8 bytes (`next_base / 8`
    /// indices); views created after this point cache it lock-free.
    pub fn reset_touched(&self) {
        let limit = lock(&self.master).next_base / 8;
        *lock(&self.touched) = Arc::new(TouchMap::new(limit));
    }

    /// Word-level snapshot of every live segment — the oracle mode uses this
    /// to rewind device memory between the tree-walk and bytecode runs.
    pub fn checkpoint(&self) -> MemCheckpoint {
        let table = self.snapshot();
        let segs = table
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive.load(Ordering::Relaxed))
            .map(|(i, s)| CkSeg {
                seg: i as u32,
                base: s.base,
                words: s.words.iter().map(|w| w.load(Ordering::Relaxed)).collect(),
            })
            .collect();
        MemCheckpoint { segs }
    }

    /// Rewind memory to `ck`: every segment captured in the checkpoint gets
    /// its words restored, and segments allocated (and still alive) since the
    /// checkpoint are freed. Panics if a checkpointed segment was freed in
    /// the meantime — the oracle cannot resurrect tombstones.
    pub fn restore(&self, ck: &MemCheckpoint) {
        let table = self.snapshot();
        let kept: HashSet<u32> = ck.segs.iter().map(|s| s.seg).collect();
        for (i, s) in table.iter().enumerate() {
            if s.alive.load(Ordering::Relaxed) && !kept.contains(&(i as u32)) {
                self.free_untyped(i as u32);
            }
        }
        for c in &ck.segs {
            let s = table
                .get(c.seg as usize)
                .unwrap_or_else(|| panic!("restore of unknown segment {}", c.seg));
            assert!(
                s.alive.load(Ordering::Relaxed) && s.words.len() == c.words.len(),
                "cannot restore segment {}: freed since the checkpoint",
                c.seg
            );
            for (w, v) in s.words.iter().zip(&c.words) {
                w.store(*v, Ordering::Relaxed);
            }
        }
    }

    /// Free a segment without knowing its element type (the type check in
    /// [`Self::free`] is only there for the typed `DPtr` surface).
    fn free_untyped(&self, idx: u32) {
        let mut m = lock(&self.master);
        let seg = m
            .segs
            .get(idx as usize)
            .cloned()
            .unwrap_or_else(|| panic!("free of invalid segment {idx}"));
        if !seg.alive.swap(false, Ordering::Relaxed) {
            panic!("double free of segment {idx}");
        }
        let mut table: Vec<Arc<Segment>> = m.segs.as_ref().clone();
        table[idx as usize] = Arc::new(Segment {
            base: seg.base,
            len: seg.len,
            elem_bytes: seg.elem_bytes,
            elem_words: seg.elem_words,
            type_id: seg.type_id,
            alive: AtomicBool::new(false),
            words: Vec::new(),
        });
        m.segs = Arc::new(table);
        drop(m);
        self.live_bytes.fetch_sub(seg.logical_bytes(), Ordering::Relaxed);
    }
}

/// A rewindable snapshot of global memory contents (see
/// [`GlobalMem::checkpoint`]).
pub struct MemCheckpoint {
    segs: Vec<CkSeg>,
}

struct CkSeg {
    seg: u32,
    base: u64,
    words: Vec<u64>,
}

impl MemCheckpoint {
    /// Compare the *host-allocated* segments (base below the fallback-arena
    /// window) of two checkpoints word for word. Returns a description of
    /// the first mismatch, or `None` when identical — the oracle's notion of
    /// "same results".
    pub fn host_mismatch(&self, other: &MemCheckpoint) -> Option<String> {
        let host = |ck: &MemCheckpoint| -> Vec<(u32, u64, usize)> {
            ck.segs
                .iter()
                .filter(|s| s.base < ARENA_BASE)
                .map(|s| (s.seg, s.base, s.words.len()))
                .collect()
        };
        if host(self) != host(other) {
            return Some("host segment tables differ".into());
        }
        let mine: Vec<&CkSeg> = self.segs.iter().filter(|s| s.base < ARENA_BASE).collect();
        let theirs: Vec<&CkSeg> = other.segs.iter().filter(|s| s.base < ARENA_BASE).collect();
        for (a, b) in mine.iter().zip(&theirs) {
            if let Some(w) = a.words.iter().zip(&b.words).position(|(x, y)| x != y) {
                return Some(format!(
                    "segment {} word {} differs: {:#x} vs {:#x}",
                    a.seg, w, a.words[w], b.words[w]
                ));
            }
        }
        None
    }
}

/// One device-side fallback allocation made through a block's
/// [`GlobalView`], reported to the launch merge step for cross-team race
/// analysis.
#[derive(Clone, Copy, Debug)]
pub struct FallbackRange {
    /// First synthetic byte address of the allocation.
    pub base: u64,
    /// Length in bytes.
    pub bytes: u64,
    /// Whether the owning block freed it before finishing.
    pub freed: bool,
    seg: u32,
}

impl FallbackRange {
    /// Whether `addr` falls inside the allocation.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.bytes
    }
}

/// A block's accessor to shared global memory: caches a segment-table
/// snapshot (refreshed on lookup miss — segment indices only grow) and owns
/// the block's deterministic fallback arena.
pub struct GlobalView<'g> {
    mem: &'g GlobalMem,
    snap: SegTable,
    touch: Arc<TouchMap>,
    /// One-entry segment cache for the hot access path: most super-steps
    /// hammer one or two segments, so the id compare plus one `Arc` deref
    /// beats the table walk. `u32::MAX` = empty. Safe across frees: the
    /// cached `Arc` shares the segment's `alive` flag, so stale use still
    /// panics exactly like a stale snapshot would.
    cache_id: u32,
    cache_seg: Option<Arc<Segment>>,
    arena_next: u64,
    arena_limit: u64,
    arena_allocs: Vec<FallbackRange>,
}

impl<'g> GlobalView<'g> {
    #[inline]
    fn seg(&mut self, idx: u32) -> &Arc<Segment> {
        if self.cache_id != idx {
            if self.snap.get(idx as usize).is_none() {
                self.snap = self.mem.snapshot();
            }
            let s = Arc::clone(
                self.snap
                    .get(idx as usize)
                    .unwrap_or_else(|| panic!("access to invalid segment {idx}")),
            );
            self.cache_seg = Some(s);
            self.cache_id = idx;
        }
        self.cache_seg.as_ref().unwrap()
    }

    /// Read element `idx` relative to `p`.
    #[inline]
    pub fn read<T: DevValue>(&mut self, p: DPtr<T>, idx: u64) -> T {
        self.seg(p.seg).read(p.seg, (p.off + idx) as usize)
    }

    /// Write element `idx` relative to `p`.
    #[inline]
    pub fn write<T: DevValue>(&mut self, p: DPtr<T>, idx: u64, v: T) {
        self.seg(p.seg).write(p.seg, (p.off + idx) as usize, v);
    }

    /// Synthetic byte address of element `idx` relative to `p`.
    #[inline]
    pub fn addr_of<T: DevValue>(&mut self, p: DPtr<T>, idx: u64) -> u64 {
        let s = self.seg(p.seg);
        s.base + (p.off + idx) * std::mem::size_of::<T>() as u64
    }

    /// Atomic `fetch_add` on an `f64` element; returns the old value.
    /// Genuinely atomic across concurrently executing blocks.
    #[inline]
    pub fn atomic_add_f64(&mut self, p: DPtr<f64>, idx: u64, v: f64) -> f64 {
        let old = self
            .seg(p.seg)
            .rmw_word::<f64>(p.seg, (p.off + idx) as usize, |w| (f64::from_bits(w) + v).to_bits());
        f64::from_bits(old)
    }

    /// Atomic `fetch_add` on a `u64` element; returns the old value.
    #[inline]
    pub fn atomic_add_u64(&mut self, p: DPtr<u64>, idx: u64, v: u64) -> u64 {
        self.seg(p.seg).rmw_word::<u64>(p.seg, (p.off + idx) as usize, |w| w.wrapping_add(v))
    }

    // Combined accessors: one segment lookup yields both the synthetic byte
    // address (for the coalescing model) and the data operation. `Lane` uses
    // these so every device access does a single table walk.

    /// Read element `idx` relative to `p`, returning its synthetic address.
    #[inline]
    pub(crate) fn read_at<T: DevValue>(&mut self, p: DPtr<T>, idx: u64) -> (u64, T) {
        let s = self.seg(p.seg);
        let addr = s.base + (p.off + idx) * std::mem::size_of::<T>() as u64;
        (addr, s.read(p.seg, (p.off + idx) as usize))
    }

    /// Write element `idx` relative to `p`, returning its synthetic address.
    #[inline]
    pub(crate) fn write_at<T: DevValue>(&mut self, p: DPtr<T>, idx: u64, v: T) -> u64 {
        let s = self.seg(p.seg);
        let addr = s.base + (p.off + idx) * std::mem::size_of::<T>() as u64;
        s.write(p.seg, (p.off + idx) as usize, v);
        addr
    }

    /// [`Self::atomic_add_f64`] plus the element's synthetic address.
    #[inline]
    pub(crate) fn atomic_add_f64_at(&mut self, p: DPtr<f64>, idx: u64, v: f64) -> (u64, f64) {
        let s = self.seg(p.seg);
        let addr = s.base + (p.off + idx) * 8;
        let old =
            s.rmw_word::<f64>(p.seg, (p.off + idx) as usize, |w| (f64::from_bits(w) + v).to_bits());
        (addr, f64::from_bits(old))
    }

    /// [`Self::atomic_add_u64`] plus the element's synthetic address.
    #[inline]
    pub(crate) fn atomic_add_u64_at(&mut self, p: DPtr<u64>, idx: u64, v: u64) -> (u64, u64) {
        let s = self.seg(p.seg);
        let addr = s.base + (p.off + idx) * 8;
        let old = s.rmw_word::<u64>(p.seg, (p.off + idx) as usize, |w| w.wrapping_add(v));
        (addr, old)
    }

    /// Allocate a zero-initialized fallback segment in this block's arena.
    /// The synthetic address depends only on the block id and this block's
    /// allocation order — never on cross-block timing — which keeps L1-set
    /// hashing and coalescing deterministic under parallel execution.
    pub fn alloc_zeroed<T: DevValue + Default>(&mut self, n: usize) -> DPtr<T> {
        let bytes = (n * std::mem::size_of::<T>()) as u64;
        let aligned = bytes.div_ceil(SEG_ALIGN).max(1) * SEG_ALIGN;
        assert!(
            self.arena_next + aligned <= self.arena_limit,
            "per-block fallback arena overflow ({} B requested past {} B arena)",
            bytes,
            ARENA_STRIDE
        );
        let base = self.arena_next;
        self.arena_next += aligned;
        let p = self.mem.push_segment(&vec![T::default(); n], Some(base));
        self.snap = self.mem.snapshot();
        self.arena_allocs.push(FallbackRange { base, bytes, freed: false, seg: p.seg });
        p
    }

    /// Free a segment (device-side). Arena allocations made through this
    /// view are marked freed for the leak/race analysis.
    pub fn free<T: DevValue>(&mut self, p: DPtr<T>) {
        self.mem.free(p);
        self.snap = self.mem.snapshot();
        self.cache_id = u32::MAX;
        self.cache_seg = None;
        if let Some(r) = self.arena_allocs.iter_mut().find(|r| r.seg == p.seg) {
            r.freed = true;
        }
    }

    /// Number of elements in the segment behind `p`, from `p`'s offset.
    pub fn len_of<T: DevValue>(&mut self, p: DPtr<T>) -> usize {
        let s = self.seg(p.seg);
        s.check::<T>(p.seg);
        s.len - p.off as usize
    }

    /// First-touch tracking (see [`GlobalMem::first_touch`]); goes through
    /// the tracker cached at view creation, so the hot commit path never
    /// takes the device-wide lock.
    #[inline]
    pub fn first_touch(&self, sector: u64) -> bool {
        self.touch.first_touch(sector)
    }

    /// The underlying shared memory object.
    pub fn mem(&self) -> &'g GlobalMem {
        self.mem
    }

    /// Fallback allocations this view performed (the launch merge step
    /// reads these for cross-team race analysis).
    pub fn fallback_ranges(&self) -> &[FallbackRange] {
        &self.arena_allocs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let g = GlobalMem::new();
        let p = g.alloc_from(&[1.0f64, 2.0, 3.0]);
        assert_eq!(g.read(p, 0), 1.0);
        assert_eq!(g.read(p, 2), 3.0);
        g.write(p, 1, 9.5);
        assert_eq!(g.read_slice(p, 3), vec![1.0, 9.5, 3.0]);
    }

    #[test]
    fn zeroed_alloc() {
        let g = GlobalMem::new();
        let p = g.alloc_zeroed::<u32>(5);
        assert_eq!(g.read_slice(p, 5), vec![0; 5]);
        assert_eq!(g.len_of(p), 5);
    }

    #[test]
    fn addresses_are_disjoint_and_typed() {
        let g = GlobalMem::new();
        let a = g.alloc_zeroed::<f64>(10);
        let b = g.alloc_zeroed::<f64>(10);
        // Consecutive elements are 8 bytes apart.
        assert_eq!(g.addr_of(a, 1) - g.addr_of(a, 0), 8);
        // Segments never share a sector.
        let last_a = g.addr_of(a, 9) + 8;
        assert!(g.addr_of(b, 0) / 32 > (last_a - 1) / 32);
    }

    #[test]
    fn pointer_offsetting() {
        let g = GlobalMem::new();
        let p = g.alloc_from(&[10u32, 20, 30, 40]);
        let q = p.add(2);
        assert_eq!(g.read(q, 0), 30);
        assert_eq!(g.len_of(q), 2);
    }

    #[test]
    #[should_panic(expected = "OOB")]
    fn oob_read_panics() {
        let g = GlobalMem::new();
        let p = g.alloc_zeroed::<f64>(3);
        g.read(p, 3);
    }

    #[test]
    #[should_panic(expected = "type confusion")]
    fn type_confusion_is_detected() {
        let g = GlobalMem::new();
        let p = g.alloc_zeroed::<f64>(3);
        let bits = p.to_bits();
        let q: DPtr<u32> = DPtr::from_bits(bits);
        g.read(q, 0);
    }

    #[test]
    #[should_panic(expected = "use after free")]
    fn use_after_free_is_detected() {
        let g = GlobalMem::new();
        let p = g.alloc_zeroed::<f64>(3);
        g.free(p);
        g.read(p, 0);
    }

    #[test]
    #[should_panic(expected = "use after free")]
    fn stale_view_snapshot_sees_free() {
        let g = GlobalMem::new();
        let p = g.alloc_zeroed::<f64>(3);
        let mut view = g.view(0);
        assert_eq!(view.read(p, 0), 0.0); // caches the snapshot
        g.free(p);
        view.read(p, 0); // stale snapshot, but the alive flag is shared
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_is_detected() {
        let g = GlobalMem::new();
        let p = g.alloc_zeroed::<f64>(3);
        g.free(p);
        g.free(p);
    }

    #[test]
    fn accounting_tracks_live_and_peak() {
        let g = GlobalMem::new();
        let p = g.alloc_zeroed::<u64>(100); // 800 bytes
        assert_eq!(g.live_bytes(), 800);
        let q = g.alloc_zeroed::<u8>(10);
        assert_eq!(g.live_bytes(), 810);
        g.free(p);
        assert_eq!(g.live_bytes(), 10);
        assert_eq!(g.peak_bytes(), 810);
        g.free(q);
        assert_eq!(g.live_bytes(), 0);
        assert_eq!(g.alloc_count(), 2);
    }

    #[test]
    fn view_refreshes_on_new_segment() {
        let g = GlobalMem::new();
        let mut view = g.view(0);
        let p = g.alloc_from(&[5u64, 6]); // allocated after the view snapshot
        assert_eq!(view.read(p, 1), 6);
    }

    #[test]
    fn arena_addresses_depend_only_on_block_id() {
        let g = GlobalMem::new();
        let mut v3 = g.view(3);
        let mut v1 = g.view(1);
        // Interleave allocations from two "blocks" in arbitrary order.
        let a3 = v3.alloc_zeroed::<u64>(4);
        let a1 = v1.alloc_zeroed::<u64>(4);
        let b3 = v3.alloc_zeroed::<u64>(4);
        assert_eq!(v3.addr_of(a3, 0), ARENA_BASE + 3 * ARENA_STRIDE);
        assert_eq!(v1.addr_of(a1, 0), ARENA_BASE + ARENA_STRIDE);
        assert_eq!(v3.addr_of(b3, 0), ARENA_BASE + 3 * ARENA_STRIDE + SEG_ALIGN);

        // A fresh memory with the opposite interleaving yields the same
        // addresses — the determinism the parallel engine relies on.
        let g2 = GlobalMem::new();
        let mut w1 = g2.view(1);
        let mut w3 = g2.view(3);
        let c1 = w1.alloc_zeroed::<u64>(4);
        let c3 = w3.alloc_zeroed::<u64>(4);
        assert_eq!(w1.addr_of(c1, 0), ARENA_BASE + ARENA_STRIDE);
        assert_eq!(w3.addr_of(c3, 0), ARENA_BASE + 3 * ARENA_STRIDE);
    }

    #[test]
    fn view_atomics_are_atomic_across_threads() {
        let g = GlobalMem::new();
        let p = g.alloc_zeroed::<u64>(1);
        std::thread::scope(|s| {
            for b in 0..4u32 {
                let g = &g;
                s.spawn(move || {
                    let mut v = g.view(b);
                    for _ in 0..1000 {
                        v.atomic_add_u64(p, 0, 1);
                    }
                });
            }
        });
        assert_eq!(g.read(p, 0), 4000);
    }

    #[test]
    fn fallback_ranges_track_frees() {
        let g = GlobalMem::new();
        let mut v = g.view(0);
        let a = v.alloc_zeroed::<u64>(2);
        let b = v.alloc_zeroed::<u64>(2);
        v.free(a);
        let b1 = v.addr_of(b, 1);
        let ranges = v.fallback_ranges();
        assert_eq!(ranges.len(), 2);
        assert!(ranges[0].freed);
        assert!(!ranges[1].freed);
        assert!(ranges[1].contains(b1));
    }

    #[test]
    fn first_touch_is_exactly_once_across_threads() {
        let g = GlobalMem::new();
        let total = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let g = &g;
                let total = &total;
                s.spawn(move || {
                    let mut mine = 0;
                    for sector in 0..10_000u64 {
                        if g.first_touch(sector) {
                            mine += 1;
                        }
                    }
                    total.fetch_add(mine, Ordering::Relaxed);
                });
            }
        });
        // Every sector is claimed by exactly one thread.
        assert_eq!(total.load(Ordering::Relaxed), 10_000);
        g.reset_touched();
        assert!(g.first_touch(0));
    }

    #[test]
    fn dense_touch_bitmap_matches_striped_semantics() {
        let g = GlobalMem::new();
        let _p = g.alloc_zeroed::<f64>(4096); // 32 KiB of host segments
        g.reset_touched(); // sizes the dense bitmap from next_base
        let v = g.view(0);
        // Host sectors (dense path) and arena sectors (striped path) both
        // report exactly-once.
        for sector in [0u64, 1, 1000, ARENA_BASE / 32, ARENA_BASE / 32 + 7] {
            assert!(v.first_touch(sector), "first touch of {sector}");
            assert!(!v.first_touch(sector), "second touch of {sector}");
        }
        // A fresh reset forgets everything, and views made afterwards see it.
        g.reset_touched();
        assert!(g.view(0).first_touch(0));
    }

    #[test]
    fn checkpoint_restore_rewinds_words_and_frees_new_segments() {
        let g = GlobalMem::new();
        let p = g.alloc_from(&[1.0f64, 2.0, 3.0]);
        let ck = g.checkpoint();
        g.write(p, 1, 99.0);
        let q = g.alloc_zeroed::<u64>(8); // allocated after the checkpoint
        g.restore(&ck);
        assert_eq!(g.read_slice(p, 3), vec![1.0, 2.0, 3.0]);
        // The post-checkpoint segment was freed by the rewind.
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| g.read(q, 0)));
        assert!(res.is_err(), "post-checkpoint segment should be dead");
    }

    #[test]
    fn checkpoints_compare_host_segments() {
        let g = GlobalMem::new();
        let p = g.alloc_from(&[5u64, 6, 7]);
        let a = g.checkpoint();
        let b = g.checkpoint();
        assert_eq!(a.host_mismatch(&b), None);
        g.write(p, 2, 8u64);
        let c = g.checkpoint();
        assert!(a.host_mismatch(&c).unwrap().contains("differs"));
        // Arena segments are invisible to the comparison.
        let mut v = g.view(0);
        let arena = v.alloc_zeroed::<u64>(4);
        v.write(arena, 0, 42);
        g.restore(&c);
        let mut v2 = g.view(0);
        let arena2 = v2.alloc_zeroed::<u64>(4);
        v2.write(arena2, 0, 7);
        let d = g.checkpoint();
        assert_eq!(c.host_mismatch(&d), None);
    }

    #[test]
    fn combined_accessors_agree_with_split_calls() {
        let g = GlobalMem::new();
        let p = g.alloc_from(&[1.5f64, 2.5]);
        let u = g.alloc_from(&[10u64, 20]);
        let mut v = g.view(0);
        let (addr, val) = v.read_at(p, 1);
        assert_eq!(addr, v.addr_of(p, 1));
        assert_eq!(val, 2.5);
        assert_eq!(v.write_at(p, 0, 9.0), v.addr_of(p, 0));
        assert_eq!(v.read(p, 0), 9.0);
        let (aaddr, old) = v.atomic_add_f64_at(p, 1, 1.0);
        assert_eq!((aaddr, old), (v.addr_of(p, 1), 2.5));
        assert_eq!(v.read(p, 1), 3.5);
        let (uaddr, uold) = v.atomic_add_u64_at(u, 1, 5);
        assert_eq!((uaddr, uold), (v.addr_of(u, 1), 20));
        assert_eq!(v.read(u, 1), 25);
    }
}
