//! Device pointers and the 8-byte argument slot encoding.
//!
//! The paper's runtime passes outlined-function arguments as a packed array
//! of pointers: *"These variables are always stored as pointers such that
//! each variable is a consistent size"* (§5.3.1). We keep that property: a
//! [`Slot`] is exactly 8 bytes, and a typed [`DPtr<T>`] round-trips through
//! its bit pattern (segment id in the high bits, element offset in the low
//! bits). Scalars travel as their raw bit patterns, exactly like firstprivate
//! scalars smuggled through a `void*` in the real runtime.
//!
//! Type information is *not* carried in the slot — the producer and the
//! consumer of a payload agree on the layout out of band, as C code does
//! with `void**`. Decoding with the wrong element type is caught at access
//! time by the typed downcast in [`super::global::GlobalMem`].

use std::fmt;
use std::marker::PhantomData;

use super::pod::DevValue;

/// Bits reserved for the element offset inside a [`DPtr`] bit pattern.
const OFF_BITS: u32 = 40;
const OFF_MASK: u64 = (1u64 << OFF_BITS) - 1;

/// A typed pointer into simulated global memory: a segment id plus an
/// element offset within the segment.
pub struct DPtr<T> {
    pub(crate) seg: u32,
    pub(crate) off: u64,
    _pd: PhantomData<fn() -> T>,
}

impl<T> Clone for DPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for DPtr<T> {}

impl<T> PartialEq for DPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.seg == other.seg && self.off == other.off
    }
}
impl<T> Eq for DPtr<T> {}

impl<T> fmt::Debug for DPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DPtr(seg={}, off={})", self.seg, self.off)
    }
}

impl<T: DevValue> DPtr<T> {
    pub(crate) fn new(seg: u32, off: u64) -> DPtr<T> {
        assert!(off <= OFF_MASK, "element offset exceeds encodable range");
        DPtr { seg, off, _pd: PhantomData }
    }

    /// Segment id (useful for diagnostics).
    pub fn segment(self) -> u32 {
        self.seg
    }

    /// Element offset within the segment.
    pub fn offset(self) -> u64 {
        self.off
    }

    /// Pointer to element `self.offset() + delta`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, delta: u64) -> DPtr<T> {
        DPtr::new(self.seg, self.off + delta)
    }

    /// Encode into an 8-byte slot bit pattern.
    pub fn to_bits(self) -> u64 {
        ((self.seg as u64) << OFF_BITS) | self.off
    }

    /// Decode from an 8-byte slot bit pattern produced by [`Self::to_bits`].
    pub fn from_bits(bits: u64) -> DPtr<T> {
        DPtr::new((bits >> OFF_BITS) as u32, bits & OFF_MASK)
    }
}

/// One 8-byte argument slot of an outlined-function payload.
///
/// Mirrors the `void**` payload of the paper's runtime: every argument —
/// pointer or scalar — occupies one fixed-size slot (§5.3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Slot(pub u64);

impl Slot {
    /// Pack a device pointer.
    pub fn from_ptr<T: DevValue>(p: DPtr<T>) -> Slot {
        Slot(p.to_bits())
    }

    /// Pack an `f64` scalar by bit pattern.
    pub fn from_f64(v: f64) -> Slot {
        Slot(v.to_bits())
    }

    /// Pack a `u64` scalar.
    pub fn from_u64(v: u64) -> Slot {
        Slot(v)
    }

    /// Pack an `i64` scalar.
    pub fn from_i64(v: i64) -> Slot {
        Slot(v as u64)
    }

    /// Pack a `u32` scalar (zero-extended).
    pub fn from_u32(v: u32) -> Slot {
        Slot(v as u64)
    }

    /// Unpack a device pointer. The caller asserts the slot was packed with
    /// [`Slot::from_ptr`] of the same `T`; a wrong `T` is detected on first
    /// dereference.
    pub fn as_ptr<T: DevValue>(self) -> DPtr<T> {
        DPtr::from_bits(self.0)
    }

    /// Unpack an `f64` scalar.
    pub fn as_f64(self) -> f64 {
        f64::from_bits(self.0)
    }

    /// Unpack a `u64` scalar.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Unpack an `i64` scalar.
    pub fn as_i64(self) -> i64 {
        self.0 as i64
    }

    /// Unpack a `u32` scalar (truncating).
    pub fn as_u32(self) -> u32 {
        self.0 as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_is_8_bytes() {
        // The §5.3.1 "consistent size" property.
        assert_eq!(std::mem::size_of::<Slot>(), 8);
    }

    #[test]
    fn ptr_bits_roundtrip() {
        let p: DPtr<f64> = DPtr::new(7, 123_456);
        let q: DPtr<f64> = DPtr::from_bits(p.to_bits());
        assert_eq!(p, q);
        assert_eq!(q.segment(), 7);
        assert_eq!(q.offset(), 123_456);
    }

    #[test]
    fn ptr_add_offsets() {
        let p: DPtr<u32> = DPtr::new(1, 10);
        assert_eq!(p.add(5).offset(), 15);
        assert_eq!(p.add(0), p);
    }

    #[test]
    fn scalar_slots_roundtrip() {
        assert_eq!(Slot::from_f64(-3.25).as_f64(), -3.25);
        assert_eq!(Slot::from_u64(u64::MAX).as_u64(), u64::MAX);
        assert_eq!(Slot::from_i64(-9).as_i64(), -9);
        assert_eq!(Slot::from_u32(42).as_u32(), 42);
        // NaN bit patterns survive.
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        assert_eq!(Slot::from_f64(nan).as_f64().to_bits(), nan.to_bits());
    }

    #[test]
    fn ptr_through_slot_roundtrip() {
        let p: DPtr<i32> = DPtr::new(3, 99);
        let s = Slot::from_ptr(p);
        assert_eq!(s.as_ptr::<i32>(), p);
    }

    #[test]
    #[should_panic]
    fn offset_range_is_enforced() {
        let _: DPtr<u8> = DPtr::new(0, 1u64 << 41);
    }
}
