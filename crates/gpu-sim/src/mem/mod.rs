//! Simulated device memory: global memory (typed segments with synthetic
//! addresses for coalescing analysis), shared memory (per-block slot array
//! with a bump allocator), and the 8-byte slot encoding used for runtime
//! argument payloads (the `void**` of the paper's outlined functions).

pub mod global;
pub mod hier;
pub mod pod;
pub mod ptr;
pub mod shared;
