//! Simulated per-block shared memory.
//!
//! Shared memory is modeled as an array of 8-byte slots with a bump
//! allocator. The OpenMP runtime reserves a *variable sharing space* at the
//! start of it (1024 bytes before the paper's work, 2048 bytes after —
//! §5.3.1), divided evenly among SIMD groups; the rest is available for
//! globalized variables (§4.3) and user allocations.
//!
//! The capacity is declared per launch and feeds the occupancy calculation:
//! more shared memory per block means fewer resident blocks per SM.

use super::ptr::Slot;

/// Handle to a shared-memory allocation: a slot offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SmOff(pub u32);

/// Per-block shared memory: an 8-byte-slot array with a bump allocator.
pub struct SharedMem {
    slots: Vec<u64>,
    /// Bump-allocation cursor, in slots.
    cursor: u32,
    /// High-water mark of the cursor, in slots.
    peak: u32,
}

impl SharedMem {
    /// Create shared memory with `capacity_bytes` bytes (rounded up to
    /// whole 8-byte slots).
    pub fn new(capacity_bytes: u32) -> SharedMem {
        let nslots = (capacity_bytes as usize).div_ceil(8);
        SharedMem { slots: vec![0; nslots], cursor: 0, peak: 0 }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u32 {
        (self.slots.len() * 8) as u32
    }

    /// Bump-allocate `bytes` bytes (rounded up to whole slots). Returns
    /// `None` when the block's shared memory is exhausted — callers fall
    /// back to global memory, as the runtime does (§5.3.1).
    pub fn alloc(&mut self, bytes: u32) -> Option<SmOff> {
        let need = bytes.div_ceil(8);
        if self.cursor as usize + need as usize > self.slots.len() {
            return None;
        }
        let off = SmOff(self.cursor);
        self.cursor += need;
        self.peak = self.peak.max(self.cursor);
        Some(off)
    }

    /// Reset the bump allocator to `mark` (stack-style deallocation at the
    /// end of a parallel region).
    pub fn reset_to(&mut self, mark: SmOff) {
        assert!(mark.0 <= self.cursor, "reset beyond allocation cursor");
        self.cursor = mark.0;
    }

    /// Current allocation cursor (to pair with [`Self::reset_to`]).
    pub fn mark(&self) -> SmOff {
        SmOff(self.cursor)
    }

    /// Peak slots ever allocated, in bytes.
    pub fn peak_bytes(&self) -> u32 {
        self.peak * 8
    }

    /// Read the slot at `off + idx`.
    #[inline]
    pub fn read_slot(&self, off: SmOff, idx: u32) -> Slot {
        Slot(self.slots[(off.0 + idx) as usize])
    }

    /// Write the slot at `off + idx`.
    #[inline]
    pub fn write_slot(&mut self, off: SmOff, idx: u32, v: Slot) {
        self.slots[(off.0 + idx) as usize] = v.0;
    }

    /// Read a slot as an `f64` (for user shared arrays of doubles).
    #[inline]
    pub fn read_f64(&self, off: SmOff, idx: u32) -> f64 {
        f64::from_bits(self.slots[(off.0 + idx) as usize])
    }

    /// Write a slot as an `f64`.
    #[inline]
    pub fn write_f64(&mut self, off: SmOff, idx: u32, v: f64) {
        self.slots[(off.0 + idx) as usize] = v.to_bits();
    }

    /// Clear all contents and the allocator (block re-use between launches).
    pub fn reset_all(&mut self) {
        self.slots.fill(0);
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_slots() {
        assert_eq!(SharedMem::new(2048).capacity_bytes(), 2048);
        assert_eq!(SharedMem::new(2047).capacity_bytes(), 2048);
        assert_eq!(SharedMem::new(1).capacity_bytes(), 8);
        assert_eq!(SharedMem::new(0).capacity_bytes(), 0);
    }

    #[test]
    fn bump_allocation_and_exhaustion() {
        let mut sm = SharedMem::new(64); // 8 slots
        let a = sm.alloc(32).unwrap(); // 4 slots
        let b = sm.alloc(32).unwrap(); // 4 slots
        assert_eq!(a, SmOff(0));
        assert_eq!(b, SmOff(4));
        // Exhausted: the global-fallback signal.
        assert_eq!(sm.alloc(8), None);
        assert_eq!(sm.peak_bytes(), 64);
    }

    #[test]
    fn stack_style_reset() {
        let mut sm = SharedMem::new(64);
        let mark = sm.mark();
        sm.alloc(64).unwrap();
        assert_eq!(sm.alloc(8), None);
        sm.reset_to(mark);
        assert!(sm.alloc(8).is_some());
        // Peak survives resets.
        assert_eq!(sm.peak_bytes(), 64);
    }

    #[test]
    fn slot_and_f64_views_alias() {
        let mut sm = SharedMem::new(32);
        let off = sm.alloc(16).unwrap();
        sm.write_f64(off, 0, 2.5);
        assert_eq!(sm.read_slot(off, 0).as_f64(), 2.5);
        sm.write_slot(off, 1, Slot::from_u64(77));
        assert_eq!(sm.read_slot(off, 1).as_u64(), 77);
    }

    #[test]
    fn reset_all_clears_contents() {
        let mut sm = SharedMem::new(32);
        let off = sm.alloc(8).unwrap();
        sm.write_f64(off, 0, 1.0);
        sm.reset_all();
        let off2 = sm.alloc(8).unwrap();
        assert_eq!(off2, SmOff(0));
        assert_eq!(sm.read_f64(off2, 0), 0.0);
    }
}
