//! The hierarchical memory cost model (`SIMT_SIM_MEM=hier`, the default).
//!
//! The flat model charges every transaction-replay cycle to the issuing
//! warp and roofs the device with two aggregate sectors-per-cycle numbers.
//! That overstates the cost of temporal-reuse baselines (the su3_bench
//! deviation documented in EXPERIMENTS.md): a replay whose line is fully
//! valid in L1 retires at L1 bandwidth through the LSU pipe on real
//! hardware instead of stalling instruction issue for a line-fill's worth
//! of cycles. Replays that *miss* (or partially fill a line) genuinely do
//! serialize — they allocate MSHRs and wait — so their cost stays on the
//! warp in both models.
//!
//! The hierarchical model keeps the per-block *charging* identical (so the
//! two execution engines, the sanitizer and the counter tests are
//! unaffected) and changes only how the per-block counters combine into a
//! makespan ([`crate::sched::makespan_model`]):
//!
//! * **L1/LSU (per SM)** — L1-hit replay cycles are *subtracted* from the
//!   warp-issue total and the latency critical path: the whole
//!   `line_cycles` charge for a *full-line* hit (every sector of the way
//!   valid — temporal reuse of a completed fill, retired by the LSU's
//!   line port at [`CacheGeom::lsu_hit_lines_per_cycle`]), and all but
//!   one issue cycle for a *partial-line* hit (the sector drains off the
//!   in-flight fill buffer). A kernel with no temporal reuse
//!   (`l1_hits == 0`) sees the flat per-SM wave unchanged.
//! * **L2 (device)** — L1-missing sectors hash to one of
//!   [`CacheGeom::l2_banks`] slices; the slowest bank is the roof.
//! * **DRAM (device)** — compulsory traffic crosses a bandwidth roof at
//!   its *effective* size: HBM's minimum access granularity
//!   ([`CacheGeom::dram_burst_sectors`] = 64 B) makes a single-sector
//!   fill occupy a whole burst atom, so uncoalesced baselines pay up to
//!   2× their useful traffic. The roof's rate is further capped by
//!   memory-level parallelism: by Little's law a launch sustaining
//!   `outstanding` sectors against `dram_latency` cycles of latency
//!   cannot exceed `outstanding / dram_latency` sectors per cycle,
//!   however wide the DRAM interface is. Cycles the cap adds are
//!   reported as [`MemStats::mlp_stalls`].
//!
//! Determinism (DESIGN §11) is preserved by construction: all new
//! counters are folded per block and merged in block-index order, and the
//! makespan arithmetic consumes only launch totals.
//!
//! [`CacheGeom::l2_banks`]: crate::arch::CacheGeom::l2_banks
//! [`MemStats::mlp_stalls`]: crate::stats::MemStats::mlp_stalls

use crate::arch::CacheGeom;

/// Environment variable selecting the memory model for new devices:
/// `flat` for the legacy single-tier roofs, anything else (or unset) for
/// the hierarchical model. [`crate::Device::set_mem_model`] overrides it
/// per device (tests must use the override — env mutation is racy under
/// a parallel test harness).
pub const MEM_MODEL_ENV: &str = "SIMT_SIM_MEM";

/// Which memory cost model a device's makespan uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MemModel {
    /// Legacy single-tier model: replay cycles on the warp critical path,
    /// flat `l2_sectors_per_cycle`/`dram_sectors_per_cycle` device roofs.
    Flat,
    /// Hierarchical L1/L2/DRAM model (this module).
    #[default]
    Hier,
}

/// Resolve the memory model: an explicit per-device override wins, then
/// [`MEM_MODEL_ENV`], then the hierarchical default.
pub fn resolve_mem_model(override_model: Option<MemModel>) -> MemModel {
    if let Some(m) = override_model {
        return m;
    }
    match std::env::var(MEM_MODEL_ENV) {
        Ok(v) if v.trim().eq_ignore_ascii_case("flat") => MemModel::Flat,
        _ => MemModel::Hier,
    }
}

/// Coalesce one warp instruction's per-lane accesses into the unique,
/// sorted set of 32-byte sectors it touches — the transaction-generation
/// rule both execution engines apply per access ordinal (an access
/// straddling a sector boundary touches every sector it overlaps).
///
/// This is the pure-function mirror of the engines' in-line coalescing,
/// exercised directly by the coalescing unit/property tests.
pub fn coalesce_sectors(accesses: &[(u64, u32)], sector_bytes: u32) -> Vec<u64> {
    let sb = sector_bytes.max(1) as u64;
    let mut sectors = Vec::new();
    for &(addr, bytes) in accesses {
        if bytes == 0 {
            continue;
        }
        let first = addr / sb;
        let last = (addr + bytes as u64 - 1) / sb;
        for s in first..=last {
            sectors.push(s);
        }
    }
    sectors.sort_unstable();
    sectors.dedup();
    sectors
}

/// L2 bank slice an L1-missing sector is served by. Fibonacci-hashed (with
/// a different shift than the L1 set hash) so power-of-two strides spread
/// instead of camping on one slice.
#[inline]
pub fn l2_bank_of(sector: u64, n_banks: u32) -> u32 {
    if n_banks <= 1 {
        return 0;
    }
    let h = sector.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 31;
    (h % n_banks as u64) as u32
}

/// Device-level L2 time: the slowest bank slice serves its sectors at
/// [`CacheGeom::l2_bank_sectors_per_cycle`]; a trailing partial beat
/// costs a full cycle.
pub fn l2_bank_time(bank_sectors: &[u64], geom: &CacheGeom) -> u64 {
    let rate = geom.l2_bank_sectors_per_cycle.max(1);
    bank_sectors.iter().map(|&s| s.div_ceil(rate)).max().unwrap_or(0)
}

/// DRAM roof with the memory-level-parallelism cap and the burst
/// (minimum-access) granularity rule: returns `(dram_cycles,
/// mlp_stall_cycles)` for the launch's compulsory traffic when it
/// sustains at most `outstanding` in-flight sectors device-wide.
/// `peak_rate` is the interface's sectors per cycle
/// ([`crate::cost::CostModel::dram_sectors_per_cycle`]).
///
/// HBM serves a minimum of [`CacheGeom::dram_burst_sectors`] sectors per
/// access, so the roof charges `dram_atoms × dram_burst_sectors`
/// *effective* sectors when that exceeds `dram_sectors`: a baseline whose
/// fills each carry one useful 32-byte sector pays double bandwidth,
/// while fully-coalesced line fills pay exactly their sector count. This
/// is what separates uncoalesced from coalesced streaming at *equal*
/// useful traffic — the core of Fig 9's baseline penalty.
pub fn dram_time(
    dram_sectors: u64,
    dram_atoms: u64,
    outstanding: u64,
    peak_rate: u64,
    geom: &CacheGeom,
) -> (u64, u64) {
    let effective = dram_sectors.max(dram_atoms.saturating_mul(geom.dram_burst_sectors));
    if effective == 0 {
        return (0, 0);
    }
    let peak = peak_rate.max(1);
    // Little's law: sustained rate = outstanding / latency.
    let sustained = (outstanding / geom.dram_latency.max(1)).max(1);
    let rate = sustained.min(peak);
    let t = effective.div_ceil(rate);
    let t_peak = effective.div_ceil(peak);
    (t, t - t_peak)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeom {
        crate::arch::DeviceArch::a100().cache
    }

    #[test]
    fn env_default_is_hier_and_override_wins() {
        assert_eq!(resolve_mem_model(Some(MemModel::Flat)), MemModel::Flat);
        assert_eq!(resolve_mem_model(Some(MemModel::Hier)), MemModel::Hier);
        assert_eq!(MemModel::default(), MemModel::Hier);
    }

    #[test]
    fn bank_hash_spreads_power_of_two_strides() {
        // 128 consecutive lines' worth of stride-4 sectors (a power-of-two
        // pattern) must not all camp on a handful of banks.
        let mut counts = vec![0u64; 40];
        for i in 0..128u64 {
            counts[l2_bank_of(i * 4, 40) as usize] += 1;
        }
        let used = counts.iter().filter(|&&c| c > 0).count();
        assert!(used >= 20, "stride-4 pattern used only {used}/40 banks");
        assert_eq!(counts.iter().sum::<u64>(), 128);
    }

    #[test]
    fn l2_time_is_slowest_bank() {
        let g = geom(); // 2 sectors/cycle per bank
        assert_eq!(l2_bank_time(&[10, 4, 0], &g), 5);
        assert_eq!(l2_bank_time(&[3], &g), 2); // partial beat rounds up
        assert_eq!(l2_bank_time(&[], &g), 0);
    }

    #[test]
    fn dram_mlp_cap_binds_at_low_occupancy() {
        let g = geom(); // latency 400, peak 32/cycle
                        // Plenty of parallelism: 108 SMs × 4 warps × 32 = 13824
                        // outstanding → sustained 34 > peak 32, no stall. Coalesced
                        // traffic: 2 sectors per atom → effective == sectors.
        let (t, stalls) = dram_time(46656, 23_328, 13_824, 32, &g);
        assert_eq!(t, 46656u64.div_ceil(32));
        assert_eq!(stalls, 0);
        // One warp on one SM: 32 outstanding / 400 latency → the sustained
        // rate clamps to the 1 sector/cycle floor.
        let (t1, stalls1) = dram_time(1000, 500, 32, 32, &g);
        assert_eq!(t1, 1000);
        assert!(stalls1 > 0);
        assert_eq!(t1 - stalls1, 1000u64.div_ceil(32));
    }

    #[test]
    fn dram_burst_granularity_doubles_single_sector_fills() {
        let g = geom(); // dram_burst_sectors = 2
                        // 1000 fills of one sector each: 1000 atoms → 2000 effective
                        // sectors, double the useful traffic.
        let (t, _) = dram_time(1000, 1000, 1 << 20, 32, &g);
        assert_eq!(t, 2000u64.div_ceil(32));
        // Fully coalesced: 1000 sectors in 500 atoms → effective 1000.
        let (tc, _) = dram_time(1000, 500, 1 << 20, 32, &g);
        assert_eq!(tc, 1000u64.div_ceil(32));
    }

    #[test]
    fn dram_zero_traffic_is_free() {
        assert_eq!(dram_time(0, 0, 0, 32, &geom()), (0, 0));
    }
}
