//! Plain-old-data marker for values that can live in simulated device
//! memory.
//!
//! Device buffers are homogeneous typed segments stored as 64-bit words
//! behind relaxed atomics (so concurrently executing blocks can share the
//! device's global memory without locks on the access path). `DevValue`
//! bounds the element types and provides the word codec: values must be
//! `Copy` (device memory is bitwise), `Send` (buffers migrate between host
//! threads in the host runtime) and `'static` (segments are type-erased by
//! `TypeId` and recovered by a type check).
//!
//! The codec is callback-based (`store_words` / `load_words`) rather than
//! buffer-based so composite values of any width encode without heap
//! allocation on the access hot path.

/// Marker + word codec for element types storable in device memory.
pub trait DevValue: Copy + Send + 'static {
    /// Number of 64-bit storage words one value occupies.
    const WORDS: usize;

    /// Emit the value as `Self::WORDS` words via `put(word_index, word)`.
    fn store_words(self, put: &mut impl FnMut(usize, u64));

    /// Rebuild a value from `Self::WORDS` words via `get(word_index)`.
    fn load_words(get: &mut impl FnMut(usize) -> u64) -> Self;
}

macro_rules! prim_dev_value {
    ($($t:ty => $to:expr, $from:expr;)*) => {$(
        impl DevValue for $t {
            const WORDS: usize = 1;
            #[inline]
            fn store_words(self, put: &mut impl FnMut(usize, u64)) {
                #[allow(clippy::redundant_closure_call)]
                put(0, ($to)(self));
            }
            #[inline]
            fn load_words(get: &mut impl FnMut(usize) -> u64) -> Self {
                #[allow(clippy::redundant_closure_call)]
                ($from)(get(0))
            }
        }
    )*};
}

prim_dev_value! {
    u8  => |v: u8| v as u64,  |w: u64| w as u8;
    u16 => |v: u16| v as u64, |w: u64| w as u16;
    u32 => |v: u32| v as u64, |w: u64| w as u32;
    u64 => |v: u64| v,        |w: u64| w;
    i8  => |v: i8| v as u8 as u64,   |w: u64| w as u8 as i8;
    i16 => |v: i16| v as u16 as u64, |w: u64| w as u16 as i16;
    i32 => |v: i32| v as u32 as u64, |w: u64| w as u32 as i32;
    i64 => |v: i64| v as u64,        |w: u64| w as i64;
    f32 => |v: f32| v.to_bits() as u64, |w: u64| f32::from_bits(w as u32);
    f64 => |v: f64| v.to_bits(),        |w: u64| f64::from_bits(w);
    usize => |v: usize| v as u64, |w: u64| w as usize;
}

impl<T: DevValue, const N: usize> DevValue for [T; N] {
    const WORDS: usize = N * T::WORDS;
    #[inline]
    fn store_words(self, put: &mut impl FnMut(usize, u64)) {
        for (i, e) in self.into_iter().enumerate() {
            e.store_words(&mut |j, w| put(i * T::WORDS + j, w));
        }
    }
    #[inline]
    fn load_words(get: &mut impl FnMut(usize) -> u64) -> Self {
        std::array::from_fn(|i| T::load_words(&mut |j| get(i * T::WORDS + j)))
    }
}

impl<A: DevValue, B: DevValue> DevValue for (A, B) {
    const WORDS: usize = A::WORDS + B::WORDS;
    #[inline]
    fn store_words(self, put: &mut impl FnMut(usize, u64)) {
        self.0.store_words(put);
        self.1.store_words(&mut |j, w| put(A::WORDS + j, w));
    }
    #[inline]
    fn load_words(get: &mut impl FnMut(usize) -> u64) -> Self {
        (A::load_words(get), B::load_words(&mut |j| get(A::WORDS + j)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: DevValue + PartialEq + std::fmt::Debug>(v: T) {
        let mut words = vec![0u64; T::WORDS];
        v.store_words(&mut |i, w| words[i] = w);
        let back = T::load_words(&mut |i| words[i]);
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0xABu8);
        roundtrip(-12345i32);
        roundtrip(u64::MAX);
        roundtrip(-1i64);
        roundtrip(3.5f32);
        roundtrip(std::f64::consts::PI);
        roundtrip(usize::MAX);
    }

    #[test]
    fn negative_ints_survive_zero_extension() {
        roundtrip(i8::MIN);
        roundtrip(i16::MIN);
        roundtrip(i32::MIN);
    }

    #[test]
    fn composites_roundtrip() {
        roundtrip([1.0f64, -2.0, 3.0]);
        roundtrip((7u32, -8.25f64));
        roundtrip([(1u64, 2u64), (3, 4)]);
        assert_eq!(<[f64; 3]>::WORDS, 3);
        assert_eq!(<(u32, f64)>::WORDS, 2);
    }

    #[test]
    fn nan_bits_are_preserved() {
        let v = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut words = [0u64; 1];
        v.store_words(&mut |i, w| words[i] = w);
        let back = f64::load_words(&mut |i| words[i]);
        assert_eq!(back.to_bits(), v.to_bits());
    }
}
