//! Plain-old-data marker for values that can live in simulated device
//! memory.
//!
//! Device buffers are homogeneous typed segments (`Vec<T>` behind a type-
//! erased box). `DevValue` bounds the element types: they must be `Copy`
//! (device memory is bitwise), `Send` (buffers migrate between host threads
//! in the host runtime) and `'static` (segments are type-erased and
//! recovered by downcast).

use std::any::Any;

/// Marker trait for element types storable in device memory.
pub trait DevValue: Copy + Send + 'static {}

impl DevValue for u8 {}
impl DevValue for u16 {}
impl DevValue for u32 {}
impl DevValue for u64 {}
impl DevValue for i8 {}
impl DevValue for i16 {}
impl DevValue for i32 {}
impl DevValue for i64 {}
impl DevValue for f32 {}
impl DevValue for f64 {}
impl DevValue for usize {}
impl<T: DevValue, const N: usize> DevValue for [T; N] {}
impl<A: DevValue, B: DevValue> DevValue for (A, B) {}

/// Type-erased storage for one device segment.
pub(crate) trait AnyBuf: Any + Send {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Number of elements in the segment.
    fn len(&self) -> usize;
    /// Size of one element in bytes.
    fn elem_size(&self) -> usize;
}

impl<T: DevValue> AnyBuf for Vec<T> {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn len(&self) -> usize {
        self.len()
    }
    fn elem_size(&self) -> usize {
        std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anybuf_reports_geometry() {
        let v: Vec<f64> = vec![0.0; 7];
        let b: &dyn AnyBuf = &v;
        assert_eq!(b.len(), 7);
        assert_eq!(b.elem_size(), 8);
    }

    #[test]
    fn anybuf_downcast_roundtrip() {
        let v: Vec<u32> = vec![1, 2, 3];
        let mut b: Box<dyn AnyBuf> = Box::new(v);
        assert!(b.as_any().downcast_ref::<Vec<u32>>().is_some());
        assert!(b.as_any().downcast_ref::<Vec<f64>>().is_none());
        b.as_any_mut().downcast_mut::<Vec<u32>>().unwrap().push(4);
        assert_eq!(b.len(), 4);
    }
}
