//! Device architecture descriptors and the multi-backend registry.
//!
//! The paper evaluates on NVIDIA A100 (40 GB) GPUs and discusses, in §5.4.1,
//! the gap towards AMD GPUs: LLVM/OpenMP provides no wavefront-level barrier
//! there, so the generic-SIMD execution mode is unavailable and `simd` loops
//! fall back to sequential execution. Both device families are modeled here;
//! the `warp_sync_supported` capability bit is what the OpenMP runtime keys
//! its legalization on.
//!
//! Architectures are **registered**, not ad-hoc: [`ArchId`] names every
//! backend the simulator ships, [`ArchRegistry`] resolves names (including
//! the `SIMT_SIM_ARCH` environment selection every harness honors), and the
//! same `ArchId` keys the serve layer's warm-plan cache so one fleet can mix
//! backends. Tests may still construct custom [`DeviceArch`] values directly
//! — the registry is the named surface, not a straitjacket.

/// GPU vendor family; selects warp width conventions and capability defaults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vendor {
    /// NVIDIA-like: 32-lane warps, masked warp barriers available.
    Nvidia,
    /// AMD-like: 64-lane wavefronts, no wavefront-level barrier exposed to
    /// the OpenMP runtime (paper §5.4.1).
    Amd,
}

/// Per-architecture memory-hierarchy geometry, consumed by the
/// hierarchical memory model ([`crate::mem::hier`], `SIMT_SIM_MEM=hier`).
///
/// The flat model collapses all of this into the two device-wide
/// sectors-per-cycle roofs in [`crate::cost::CostModel`]; the hierarchical
/// model splits them into a per-SM LSU pipe, banked L2 slices, and a
/// DRAM roofline whose effective bandwidth is capped by memory-level
/// parallelism (Little's law over the launch's outstanding requests).
#[derive(Clone, Debug)]
pub struct CacheGeom {
    /// Number of independent L2 bank slices (address-hashed).
    pub l2_banks: u32,
    /// Sectors per cycle one L2 bank slice can serve. The aggregate
    /// `l2_banks × l2_bank_sectors_per_cycle` matches the flat model's
    /// [`crate::cost::CostModel::l2_sectors_per_cycle`] for a perfectly
    /// balanced access stream; bank camping degrades from there.
    pub l2_bank_sectors_per_cycle: u64,
    /// Full-line L1-hit transactions one SM's LSU retires per cycle.
    /// Replays whose line is entirely valid in the warp's L1 window
    /// (temporal reuse) are serviced at L1 bandwidth off the issue
    /// path; partial fills and misses stay on the warp — they allocate
    /// MSHRs and serialize like the flat model says.
    pub lsu_hit_lines_per_cycle: u64,
    /// Minimum DRAM access granularity in 32-byte sectors (HBM burst
    /// atom = 64 B → 2). A fill carrying fewer useful sectors than this
    /// still occupies a whole atom of bandwidth, which is what makes
    /// uncoalesced streaming pay up to 2× its useful traffic at the
    /// hierarchical DRAM roof.
    pub dram_burst_sectors: u64,
    /// Round-trip DRAM latency in cycles (Little's law input).
    pub dram_latency: u64,
    /// Maximum outstanding DRAM sectors one resident warp sustains
    /// (MSHR/LDST queue share). Occupancy × this bounds the launch's
    /// memory-level parallelism.
    pub mlp_per_warp: u64,
}

/// Static description of a simulated device.
///
/// The resource limits feed the occupancy calculation in [`crate::sched`];
/// the capability flags feed runtime-mode decisions in `simt-omp-core`.
#[derive(Clone, Debug)]
pub struct DeviceArch {
    /// Human-readable name, printed by benchmark harnesses.
    pub name: &'static str,
    /// Vendor family.
    pub vendor: Vendor,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Lanes per warp (32 NVIDIA, 64 AMD).
    pub warp_size: u32,
    /// Maximum threads per thread block accepted by a launch.
    pub max_threads_per_block: u32,
    /// Maximum resident threads per SM (occupancy limit).
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM (occupancy limit).
    pub max_blocks_per_sm: u32,
    /// Shared memory capacity per block, bytes.
    pub smem_per_block: u32,
    /// Shared memory capacity per SM, bytes (occupancy limit).
    pub smem_per_sm: u32,
    /// Whether a warp-level barrier over a lane mask exists. The generic
    /// SIMD execution mode requires it (paper §5.4.1).
    pub warp_sync_supported: bool,
    /// Independent shared-memory banks. Successive 8-byte slots hash to
    /// successive banks; distinct slots landing in one bank serialize into
    /// wavefronts ([`crate::exec::BankAcc`]). NVIDIA SMs expose 32 banks;
    /// the wave64 LDS is modeled as one bank per lane (64), so a stride-1
    /// full-wavefront access is conflict-free on both families.
    pub smem_banks: u32,
    /// Memory-hierarchy geometry for the hierarchical cost model.
    pub cache: CacheGeom,
}

impl DeviceArch {
    /// NVIDIA A100-like descriptor (108 SMs, 32-lane warps), matching the
    /// paper's Perlmutter test bed (§6.1).
    pub fn a100() -> DeviceArch {
        DeviceArch {
            name: "sim-A100-40GB",
            vendor: Vendor::Nvidia,
            num_sms: 108,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            smem_per_block: 96 * 1024,
            smem_per_sm: 164 * 1024,
            warp_sync_supported: true,
            smem_banks: 32,
            // 40 L2 slices × 2 sectors/cycle = the flat model's 80
            // aggregate; ~400-cycle DRAM round trip per published A100
            // microbenchmarks.
            cache: CacheGeom {
                l2_banks: 40,
                l2_bank_sectors_per_cycle: 2,
                lsu_hit_lines_per_cycle: 2,
                dram_burst_sectors: 2,
                dram_latency: 400,
                mlp_per_warp: 32,
            },
        }
    }

    /// AMD MI100-like descriptor (120 CUs, 64-lane wavefronts, no
    /// wavefront-level barrier — paper §5.4.1).
    pub fn mi100() -> DeviceArch {
        DeviceArch {
            name: "sim-MI100",
            vendor: Vendor::Amd,
            num_sms: 120,
            warp_size: 64,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2560,
            max_blocks_per_sm: 40,
            smem_per_block: 64 * 1024,
            smem_per_sm: 64 * 1024,
            warp_sync_supported: false,
            // One LDS bank per wavefront lane: a stride-1 access by all 64
            // lanes is conflict-free, exactly like 32 lanes over 32 banks
            // on the NVIDIA side. Folding 64 lanes into a 32-bank hash
            // (the old hard-coded model) manufactured 2-deep conflicts for
            // every dense access — the bug the `smem_banks` field fixes.
            smem_banks: 64,
            cache: CacheGeom {
                l2_banks: 32,
                l2_bank_sectors_per_cycle: 2,
                lsu_hit_lines_per_cycle: 2,
                dram_burst_sectors: 2,
                dram_latency: 350,
                mlp_per_warp: 32,
            },
        }
    }

    /// A small device useful in tests: 4 SMs, low residency limits, so that
    /// occupancy effects are visible with tiny launches.
    pub fn tiny() -> DeviceArch {
        DeviceArch {
            name: "sim-tiny",
            vendor: Vendor::Nvidia,
            num_sms: 4,
            warp_size: 32,
            max_threads_per_block: 256,
            max_threads_per_sm: 512,
            max_blocks_per_sm: 4,
            smem_per_block: 8 * 1024,
            smem_per_sm: 16 * 1024,
            warp_sync_supported: true,
            smem_banks: 32,
            // Scaled-down hierarchy so occupancy and banking effects stay
            // visible with tiny launches.
            cache: CacheGeom {
                l2_banks: 8,
                l2_bank_sectors_per_cycle: 2,
                lsu_hit_lines_per_cycle: 2,
                dram_burst_sectors: 2,
                dram_latency: 400,
                mlp_per_warp: 32,
            },
        }
    }

    /// Number of warps needed to hold `threads` threads.
    #[inline]
    pub fn warps_for(&self, threads: u32) -> u32 {
        threads.div_ceil(self.warp_size)
    }

    /// The architecture `SIMT_SIM_ARCH` selects (default: `a100`).
    /// Shorthand for [`ArchRegistry::from_env`]`.arch()`.
    pub fn from_env() -> DeviceArch {
        ArchRegistry::from_env().arch()
    }
}

/// Key of one registered backend — `Copy + Eq + Hash`, so callers that
/// must content-address on an architecture (the serve layer's `PlanKey`
/// warm-plan cache) embed the id rather than the full descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArchId {
    /// NVIDIA A100-like (32-lane warps, warp barriers available).
    A100,
    /// AMD MI100-like (64-lane wavefronts, no wavefront barrier —
    /// generic simd legalizes to leader-lane sequential execution).
    Mi100,
    /// Scaled-down test device (32-lane warps).
    Tiny,
}

impl ArchId {
    /// Registry name (what `SIMT_SIM_ARCH` matches).
    pub fn name(self) -> &'static str {
        match self {
            ArchId::A100 => "a100",
            ArchId::Mi100 => "mi100",
            ArchId::Tiny => "tiny",
        }
    }

    /// Materialize the full descriptor.
    pub fn arch(self) -> DeviceArch {
        match self {
            ArchId::A100 => DeviceArch::a100(),
            ArchId::Mi100 => DeviceArch::mi100(),
            ArchId::Tiny => DeviceArch::tiny(),
        }
    }

    /// Lanes per warp of this backend (without materializing the
    /// descriptor — the field plan keys used to carry directly).
    pub fn warp_size(self) -> u32 {
        match self {
            ArchId::A100 | ArchId::Tiny => 32,
            ArchId::Mi100 => 64,
        }
    }
}

impl std::fmt::Display for ArchId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The named backend registry: every architecture the simulator ships,
/// resolvable by name (registry key or the descriptor's display name,
/// case-insensitively) and via the `SIMT_SIM_ARCH` environment variable.
pub struct ArchRegistry;

impl ArchRegistry {
    /// Every registered backend, in presentation order.
    pub const ALL: [ArchId; 3] = [ArchId::A100, ArchId::Mi100, ArchId::Tiny];

    /// Registry names, aligned with [`ArchRegistry::ALL`].
    pub fn names() -> impl Iterator<Item = &'static str> {
        Self::ALL.iter().map(|id| id.name())
    }

    /// Resolve a name to its registry id. Accepts the registry key
    /// (`"mi100"`) or the descriptor name (`"sim-MI100"`), either case.
    pub fn lookup(name: &str) -> Option<ArchId> {
        let want = name.to_ascii_lowercase();
        Self::ALL
            .into_iter()
            .find(|id| id.name() == want || id.arch().name.to_ascii_lowercase() == want)
    }

    /// The backend `SIMT_SIM_ARCH` names, defaulting to [`ArchId::A100`]
    /// (the paper's test bed). An unknown name panics with the registry
    /// listing — a silently substituted architecture would invalidate
    /// every number a run produces.
    pub fn from_env() -> ArchId {
        match std::env::var("SIMT_SIM_ARCH") {
            Ok(v) if !v.is_empty() => Self::lookup(&v).unwrap_or_else(|| {
                panic!(
                    "SIMT_SIM_ARCH={v:?} names no registered architecture \
                     (known: {})",
                    Self::names().collect::<Vec<_>>().join(", ")
                )
            }),
            _ => ArchId::A100,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_shape() {
        let a = DeviceArch::a100();
        assert_eq!(a.vendor, Vendor::Nvidia);
        assert_eq!(a.warp_size, 32);
        assert_eq!(a.num_sms, 108);
        assert!(a.warp_sync_supported);
    }

    #[test]
    fn amd_lacks_warp_sync() {
        let a = DeviceArch::mi100();
        assert_eq!(a.vendor, Vendor::Amd);
        assert_eq!(a.warp_size, 64);
        assert!(!a.warp_sync_supported);
    }

    #[test]
    fn registry_resolves_names_and_aliases() {
        assert_eq!(ArchRegistry::lookup("a100"), Some(ArchId::A100));
        assert_eq!(ArchRegistry::lookup("MI100"), Some(ArchId::Mi100));
        assert_eq!(ArchRegistry::lookup("sim-MI100"), Some(ArchId::Mi100));
        assert_eq!(ArchRegistry::lookup("tiny"), Some(ArchId::Tiny));
        assert_eq!(ArchRegistry::lookup("h100"), None);
        for id in ArchRegistry::ALL {
            assert_eq!(ArchRegistry::lookup(id.name()), Some(id));
            assert_eq!(id.arch().warp_size, id.warp_size());
        }
    }

    #[test]
    fn bank_counts_match_lane_counts() {
        // One bank per lane on both families: a dense stride-1 access by a
        // full warp/wavefront must be conflict-free.
        assert_eq!(DeviceArch::a100().smem_banks, 32);
        assert_eq!(DeviceArch::mi100().smem_banks, 64);
        assert_eq!(DeviceArch::tiny().smem_banks, 32);
    }

    #[test]
    fn warps_for_rounds_up() {
        let a = DeviceArch::a100();
        assert_eq!(a.warps_for(1), 1);
        assert_eq!(a.warps_for(32), 1);
        assert_eq!(a.warps_for(33), 2);
        assert_eq!(a.warps_for(128), 4);
        let m = DeviceArch::mi100();
        assert_eq!(m.warps_for(65), 2);
    }
}
