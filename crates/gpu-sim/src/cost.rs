//! The analytic cycle cost model.
//!
//! Absolute cycle numbers from a software simulator are synthetic; what the
//! reproduction needs is that the *relative* effects the paper measures are
//! represented with plausible magnitudes:
//!
//! * compute issue throughput per SM (warp instructions / cycle),
//! * memory traffic in 32-byte sectors (coalescing) with a device-level
//!   bandwidth roof,
//! * partially-hidden memory latency (the visible fraction shrinks with
//!   occupancy — modeled as a fixed exposed-latency constant calibrated for
//!   the mid-occupancy regime the paper's kernels run in),
//! * synchronization costs: masked warp barriers are cheap, block-level
//!   barriers are an order of magnitude more expensive (this asymmetry is
//!   exactly why the paper's SIMD state machine, built on warp barriers, is
//!   cheaper than the team-level state machine built on block barriers),
//! * shared-memory access cost (the generic mode's variable-sharing space),
//! * atomic cost with same-address serialization inside a warp.
//!
//! Every benchmark and test uses the same constants; nothing is tuned per
//! figure. All constants are documented so deviations can be audited.

/// Cycle-cost constants for a simulated device.
///
/// The defaults are loosely calibrated against published A100
/// microbenchmarks (instruction issue 4 warps/cycle/SM split across
/// pipelines, ~400-cycle DRAM latency with high occupancy hiding most of it,
/// ~30 cycles shared-memory round trip, `__syncthreads` in the tens of
/// cycles when not contended).
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Bytes per DRAM traffic sector.
    pub sector_bytes: u32,
    /// Warp-visible cycles charged per global-memory sector *missing* the
    /// L1 window (DRAM transaction issue).
    pub sector_cycles: u64,
    /// Bytes per L1 cache line (transaction granularity of the LSU).
    pub line_bytes: u32,
    /// Warp-visible cycles per distinct cache line touched by one memory
    /// instruction. An uncoalesced instruction touching 32 lines replays
    /// 32 transactions; a fully coalesced one touches 1–2.
    pub line_cycles: u64,
    /// Exposed (non-hidden) latency cycles charged per memory access
    /// *ordinal* that misses the L1 window (one per static access executed
    /// by a warp). Most latency is hidden by occupancy; this is the
    /// calibrated residue.
    pub exposed_latency: u64,

    /// Per-warp L1 window capacity in 128-byte cache lines (4-way set
    /// associative). A100 has 192 KB combined L1 per SM shared by up to 64
    /// resident warps, so a warp's fair slice is only a few KB — strided
    /// access patterns whose per-warp footprint exceeds it (32 lanes × a
    /// line each = 4 KB) thrash, which is exactly the coalescing penalty
    /// the paper's `simd` mapping removes.
    pub l1_lines: u32,
    /// Warp-visible cycles per shared-memory access wavefront. Shared
    /// memory has [`crate::arch::DeviceArch::smem_banks`] banks (8-byte
    /// slots map to `slot % banks`); lanes of one instruction hitting
    /// *different* slots in the same bank serialize into that many
    /// wavefronts, while same-slot accesses broadcast.
    pub smem_cycles: u64,
    /// Cost of a masked warp-level barrier (`synchronizeWarp`).
    pub warp_sync_cycles: u64,
    /// Fixed bookkeeping issue cost of one SIMD state-machine handshake
    /// (post flags, fences, mask management — Fig 4/Fig 6), charged per
    /// warp per posted simd loop in generic mode, on top of the staged
    /// shared-memory traffic and warp barriers.
    pub handshake_cycles: u64,
    /// Cost of a block-level barrier (all warps of a team).
    pub block_barrier_cycles: u64,
    /// Base cost of an atomic RMW on global memory.
    pub atomic_cycles: u64,
    /// Additional serialization cost for each extra lane in a warp that
    /// targets the *same address* in the same atomic instruction.
    pub atomic_conflict_cycles: u64,
    /// Fixed overhead per kernel launch (driver + dispatch), cycles.
    pub launch_overhead: u64,
    /// Warp instructions an SM can issue per cycle (throughput roof across
    /// all resident warps of the SM).
    pub sm_issue_width: u64,
    /// Cycles per sector through one SM's memory pipeline (L1/LSU roof).
    pub sm_sector_cycles: u64,
    /// Device-wide DRAM bandwidth roof, applied to *compulsory* traffic
    /// (first touch of each sector): sectors per cycle.
    pub dram_sectors_per_cycle: u64,
    /// Device-wide L2 bandwidth roof, applied to all L1-miss traffic
    /// (~2.5× DRAM bandwidth on A100-class parts): sectors per cycle.
    pub l2_sectors_per_cycle: u64,
    /// Base cost of dispatching an outlined function through the if-cascade
    /// of known regions (paper §5.5): the branch to the first compare.
    pub cascade_dispatch_cycles: u64,
    /// Incremental cost per cascade level walked before the match: the
    /// cascade is a *linear* compare+branch chain over the known outlined
    /// regions, so a body registered at position `p` pays
    /// `cascade_dispatch_cycles + p * cascade_level_cycles`. With enough
    /// registered regions the chain overtakes
    /// [`CostModel::indirect_call_cycles`] —
    /// the §5.5 trade-off that makes the cascade a heuristic, not a win
    /// in all cases.
    pub cascade_level_cycles: u64,
    /// Cost of a fallback indirect call through a function pointer
    /// (paper §5.5 notes these are "normally costly").
    pub indirect_call_cycles: u64,
    /// Cost of allocating a global-memory fallback block for the variable
    /// sharing space when a SIMD group's shared-memory slice is exhausted
    /// (paper §5.3.1: "a global memory allocation is created instead").
    pub global_alloc_cycles: u64,
    /// Imperfect compute/memory overlap: a wave costs
    /// `max(issue, mem, latency) + min(issue, mem) / overlap_denom`
    /// (0 disables the additive term — perfect overlap).
    pub overlap_denom: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            sector_bytes: 32,
            sector_cycles: 2,
            line_bytes: 128,
            line_cycles: 6,
            exposed_latency: 6,
            l1_lines: 512,
            smem_cycles: 2,
            warp_sync_cycles: 10,
            handshake_cycles: 64,
            block_barrier_cycles: 96,
            atomic_cycles: 24,
            atomic_conflict_cycles: 12,
            launch_overhead: 4_000,
            sm_issue_width: 2,
            sm_sector_cycles: 2,
            dram_sectors_per_cycle: 32,
            l2_sectors_per_cycle: 80,
            cascade_dispatch_cycles: 4,
            cascade_level_cycles: 3,
            indirect_call_cycles: 40,
            global_alloc_cycles: 600,
            overlap_denom: 4,
        }
    }
}

impl CostModel {
    /// Number of sectors needed to cover `bytes` bytes starting at `addr`,
    /// assuming sector-aligned transaction boundaries.
    #[inline]
    pub fn sectors_for(&self, addr: u64, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let sb = self.sector_bytes as u64;
        let first = addr / sb;
        let last = (addr + bytes - 1) / sb;
        last - first + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sector_counting_aligned() {
        let c = CostModel::default();
        assert_eq!(c.sectors_for(0, 32), 1);
        assert_eq!(c.sectors_for(0, 33), 2);
        assert_eq!(c.sectors_for(0, 64), 2);
        assert_eq!(c.sectors_for(0, 0), 0);
    }

    #[test]
    fn sector_counting_unaligned() {
        let c = CostModel::default();
        // 8 bytes straddling a sector boundary costs two sectors.
        assert_eq!(c.sectors_for(28, 8), 2);
        assert_eq!(c.sectors_for(31, 1), 1);
        assert_eq!(c.sectors_for(31, 2), 2);
    }

    #[test]
    fn cascade_walk_overtakes_indirect_call_at_some_depth() {
        // §5.5: the if-cascade only beats the indirect call while the match
        // sits early in the compare chain. The default constants must admit
        // a crossover — otherwise the dispatch ablation cannot show the
        // trade-off.
        let c = CostModel::default();
        let cascade_at = |p: u64| c.cascade_dispatch_cycles + p * c.cascade_level_cycles;
        assert!(cascade_at(0) < c.indirect_call_cycles);
        let threshold = (0..).find(|&p| cascade_at(p) > c.indirect_call_cycles).unwrap();
        assert!(threshold > 1, "shallow matches must still win");
        assert!(cascade_at(threshold) > c.indirect_call_cycles);
    }

    #[test]
    fn warp_sync_is_much_cheaper_than_block_barrier() {
        // The paper's central cost asymmetry (§5.1): SIMD groups synchronize
        // with warp-level barriers which "do not have the same limitations"
        // as the team-level barrier that needs an extra warp.
        let c = CostModel::default();
        assert!(c.warp_sync_cycles * 3 <= c.block_barrier_cycles);
    }
}
