//! SU3_bench demo: lattice-QCD SU(3) matrix–matrix multiplies with the
//! 36-iteration inner loop vectorized across SIMD group lanes (paper §6.3).
//!
//! ```text
//! cargo run --release --example su3 [sites]
//! ```

use simt_omp::gpu::Device;
use simt_omp::kernels::harness::{max_abs_err, speedup};
use simt_omp::kernels::su3::{build, run, Su3Dev, Su3Workload, INNER_TRIP};

fn main() {
    let sites: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(13_824);

    let w = Su3Workload::generate(sites, 7);
    let want = w.reference();
    println!(
        "{sites} lattice sites × 4 links: {INNER_TRIP}-iteration inner loop \
         ({} complex multiply-adds total)",
        sites * 4 * 27
    );

    let base = {
        let mut dev = Device::a100();
        let ops = Su3Dev::upload(&mut dev, &w);
        let k = build(108, 128, 1);
        let (c, stats) = run(&mut dev, &k, &ops);
        assert!(max_abs_err(&c, &want) < 1e-9);
        println!("baseline (serial inner loop): {:>9} cycles", stats.cycles);
        stats.cycles
    };

    for gs in [2u32, 4, 8, 16, 32] {
        let mut dev = Device::a100();
        let ops = Su3Dev::upload(&mut dev, &w);
        let k = build(108, 128, gs);
        let (c, stats) = run(&mut dev, &k, &ops);
        assert!(max_abs_err(&c, &want) < 1e-9);
        let waste =
            (INNER_TRIP.div_ceil(gs as u64) * gs as u64 - INNER_TRIP) as f64 / INNER_TRIP as f64;
        println!(
            "simd group {gs:>2}: {:>9} cycles ({:.2}x, {:.0}% idle-lane waste on 36 iters)",
            stats.cycles,
            speedup(base, stats.cycles),
            waste * 100.0
        );
    }
    println!(
        "\n36 iterations divide evenly by 2 and 4 (zero idle lanes); larger\n\
         groups waste lanes on the last step — the §6.5 divisibility guidance."
    );
}
