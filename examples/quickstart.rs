//! Quickstart: three-level `teams distribute parallel for` + `simd` on the
//! simulated GPU.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Computes `y[i] = a*x[i] + y[i]` over `rows × 64` elements, with rows
//! spread across teams/SIMD-groups and the 64-element inner loop across the
//! lanes of each group.

use simt_omp::gpu::Slot;
use simt_omp::prelude::*;

fn main() {
    let rows: u64 = 4096;
    let inner: u64 = 64;
    let n = (rows * inner) as usize;

    // A simulated A100 with its own global memory.
    let mut dev = Device::a100();
    let x = dev.global.alloc_from(&(0..n).map(|i| i as f64).collect::<Vec<_>>());
    let y = dev.global.alloc_from(&vec![1.0f64; n]);

    // "Compile" the target region: the builder outlines the loop body,
    // packs the payload and infers execution modes (here: teams SPMD,
    // parallel SPMD — everything is tightly nested with uniform bounds).
    let mut b = TargetBuilder::new().num_teams(108).threads(128);
    let rows_trip = b.trip_const(rows);
    let inner_trip = b.trip_const(inner);
    let kernel = b.build(|t| {
        t.distribute_parallel_for(rows_trip, Schedule::Cyclic(1), 16, |p, row| {
            p.simd(inner_trip, move |lane, iv, v| {
                let x = v.args[0].as_ptr::<f64>();
                let y = v.args[1].as_ptr::<f64>();
                let a = v.args[2].as_f64();
                let i = v.regs[row.0].as_u64() * 64 + iv;
                let xv = lane.read(x, i);
                let yv = lane.read(y, i);
                lane.work(2); // one fused multiply-add
                lane.write(y, i, a * xv + yv);
            });
        });
    });

    println!(
        "analysis: teams={:?}, parallel={:?} (simdlen {})",
        kernel.analysis.teams_mode,
        kernel.analysis.parallels[0].desc.mode,
        kernel.analysis.parallels[0].desc.simdlen
    );

    let args = [Slot::from_ptr(x), Slot::from_ptr(y), Slot::from_f64(2.0)];
    let stats = kernel.run(&mut dev, &args);

    // Verify against the host.
    let got = dev.global.read_slice(y, n);
    let ok = (0..n).all(|i| got[i] == 2.0 * i as f64 + 1.0);
    println!(
        "simulated {} cycles over {} blocks ({} blocks/SM), result {}",
        stats.cycles,
        stats.blocks,
        stats.blocks_per_sm,
        if ok { "VERIFIED" } else { "WRONG" }
    );
    println!(
        "runtime counters: {} simd loops, {} warp syncs, {} state-machine posts",
        stats.counters.simd_loops, stats.counters.warp_syncs, stats.counters.state_machine_posts
    );
    assert!(ok);
}
