//! SIMD group-size tuning for sparse matrix–vector products — the paper's
//! §6.5 guidance ("It is likely best to experiment with the different
//! options") as a runnable workflow.
//!
//! ```text
//! cargo run --release --example spmv_tuning [rows] [mean_nnz]
//! ```
//!
//! Generates a CSR matrix with varying row lengths, runs the two-level
//! baseline and every SIMD group size, and reports the winner.

use simt_omp::gpu::Device;
use simt_omp::kernels::harness::{max_abs_err, speedup};
use simt_omp::kernels::matrix::{CsrMatrix, RowProfile};
use simt_omp::kernels::spmv;

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16_384);
    let mean: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(24);

    let profile = RowProfile::Banded { min: (mean / 6).max(1), max: mean * 11 / 6 };
    let mat = CsrMatrix::generate(rows, rows, profile, 42);
    let x: Vec<f64> = (0..rows).map(|i| ((i * 13) % 31) as f64 * 0.0625).collect();
    let want = mat.spmv_ref(&x);
    println!(
        "matrix: {} rows, {} nnz (mean {:.1}/row, varying sparsity)",
        mat.nrows,
        mat.nnz(),
        mat.mean_row_len()
    );

    // Two-level baseline: teams distribute (generic) + parallel for.
    let base = {
        let mut dev = Device::a100();
        let ops = spmv::SpmvDev::upload(&mut dev, &mat, &x);
        let k = spmv::build_two_level(1728);
        let (y, stats) = spmv::run(&mut dev, &k, &ops);
        assert!(max_abs_err(&y, &want) < 1e-9);
        println!("two-level baseline: {:>9} cycles", stats.cycles);
        stats.cycles
    };

    // Three-level with each group size.
    let mut best = (0u32, 0.0f64);
    for gs in [2u32, 4, 8, 16, 32] {
        let mut dev = Device::a100();
        let ops = spmv::SpmvDev::upload(&mut dev, &mat, &x);
        let k = spmv::build_three_level(108, 128, gs);
        let (y, stats) = spmv::run(&mut dev, &k, &ops);
        assert!(max_abs_err(&y, &want) < 1e-9);
        let s = speedup(base, stats.cycles);
        println!(
            "simdlen {gs:>2}: {:>9} cycles  ({s:.2}x vs baseline, {} sharing fallbacks)",
            stats.cycles, stats.counters.sharing_global_fallbacks
        );
        if s > best.1 {
            best = (gs, s);
        }
    }
    println!(
        "\nbest group size for mean row length {:.1}: {} ({:.2}x) — the paper's \
         guidance: pick sizes that waste the fewest lanes for your sparsity.",
        mat.mean_row_len(),
        best.0,
        best.1
    );
}
