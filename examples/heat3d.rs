//! Multi-sweep 3-D heat diffusion driven through the host runtime: data is
//! mapped once (`map(to:)`/`map(from:)` semantics with reference counts),
//! several Jacobi sweeps run on the device, and only the final grid is
//! copied back — the standard `target data` pattern of OpenMP offloading.
//!
//! ```text
//! cargo run --release --example heat3d [n] [sweeps]
//! ```

use std::sync::Arc;

use simt_omp::gpu::{DPtr, Slot};
use simt_omp::host::sync::Mutex;
use simt_omp::host::HostRuntime;
use simt_omp::kernels::harness::Fig10Variant;
use simt_omp::kernels::laplace3d::{build, Laplace3dWorkload};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let sweeps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let w = Laplace3dWorkload::generate(n);
    let mut grid_a = w.u.clone();
    let mut grid_b = w.u.clone();

    let rt = HostRuntime::new();
    let dev = rt.device(0);
    let kernel = build(108, 128, Fig10Variant::SpmdSimd);

    let mut total_cycles = 0u64;
    {
        let mut md = dev.lock();
        // Enter the data region: one H2D copy per grid.
        let a = md.map_to(&grid_a);
        let b_ptr = md.map_to(&grid_b);
        println!(
            "mapped {} MB to {} (h2d transfers: {})",
            2 * grid_a.len() * 8 / (1 << 20),
            md.dev.arch.name,
            md.xfer.h2d_count
        );

        // Ping-pong sweeps entirely on the device.
        for s in 0..sweeps {
            let (src, dst) = if s % 2 == 0 { (a, b_ptr) } else { (b_ptr, a) };
            let args = [Slot::from_ptr(src), Slot::from_ptr(dst), Slot::from_u64(n as u64)];
            let stats = kernel.run(&mut md.dev, &args);
            total_cycles += stats.cycles;
            println!("sweep {s}: {} cycles", stats.cycles);
        }

        // Exit the data region: D2H copy-back on the last reference.
        md.map_from(&mut grid_a);
        md.map_from(&mut grid_b);
        println!(
            "transfers: {} h2d / {} d2h, {} link cycles",
            md.xfer.h2d_count, md.xfer.d2h_count, md.xfer.cycles
        );
    }

    // Verify one sweep against the host reference.
    let first = w.reference();
    let device_first = if sweeps.is_multiple_of(2) { &grid_a } else { &grid_b };
    let _ = device_first;
    let mut next = first;
    for _ in 1..sweeps {
        let hw = Laplace3dWorkload { n, u: next.clone() };
        next = hw.reference();
    }
    let result = if sweeps % 2 == 1 { &grid_b } else { &grid_a };
    let max_err = result.iter().zip(next.iter()).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!(
        "{sweeps} sweeps on {n}³ grid: {total_cycles} total device cycles, max err {max_err:.2e}"
    );
    assert!(max_err < 1e-9, "device result diverged from host reference");

    batched_instances(n.min(32), sweeps);
}

/// Ping-pong grid pair handed from the upload op to the compute op.
type GridPair = Arc<Mutex<Option<(DPtr<f64>, DPtr<f64>)>>>;

/// Double-buffered batch: several independent heat instances streamed
/// through upload → sweeps → download on three streams (H2D, compute, D2H)
/// chained by events, so instance *k+1* uploads while *k* computes and
/// *k−1* drains — the `target nowait` pipeline on the virtual timeline.
fn batched_instances(n: usize, sweeps: usize) {
    let batch = 4usize;
    let rt = HostRuntime::new();
    let copy = rt.stream(0);
    let compute = rt.stream(0);
    let down = rt.stream(0);
    let kernel = Arc::new(build(108, 128, Fig10Variant::SpmdSimd));

    let mut outputs: Vec<Arc<Mutex<Vec<f64>>>> = Vec::new();
    for _ in 0..batch {
        let w = Laplace3dWorkload::generate(n);
        let u = w.u.clone();
        let bytes = (u.len() * 8) as u64;
        let grids: GridPair = Arc::new(Mutex::new(None));

        let g_in = Arc::clone(&grids);
        copy.enqueue_h2d(move |md| {
            let a = md.dev.global.alloc_zeroed::<f64>(u.len());
            let b = md.dev.global.alloc_zeroed::<f64>(u.len());
            md.dev.global.write_slice(a, &u);
            md.dev.global.write_slice(b, &u);
            *g_in.lock() = Some((a, b));
            let model = md.model;
            md.xfer.record_h2d(&model, 2 * bytes);
            model.cycles_for(2 * bytes)
        });
        let uploaded = copy.record_event();

        compute.wait_event(&uploaded);
        let g_run = Arc::clone(&grids);
        let k = Arc::clone(&kernel);
        compute.enqueue(move |md| {
            let (a, b) = g_run.lock().expect("uploaded before compute");
            let mut cycles = 0;
            for s in 0..sweeps {
                let (src, dst) = if s % 2 == 0 { (a, b) } else { (b, a) };
                let args = [Slot::from_ptr(src), Slot::from_ptr(dst), Slot::from_u64(n as u64)];
                cycles += k.run(&mut md.dev, &args).cycles;
            }
            cycles
        });
        let computed = compute.record_event();

        down.wait_event(&computed);
        let out = Arc::new(Mutex::new(Vec::new()));
        outputs.push(Arc::clone(&out));
        let g_out = Arc::clone(&grids);
        let len = w.u.len();
        down.enqueue_d2h(move |md| {
            let (a, b) = g_out.lock().take().expect("computed before download");
            let result = if sweeps % 2 == 1 { b } else { a };
            *out.lock() = md.dev.global.read_slice(result, len);
            let model = md.model;
            md.xfer.record_d2h(&model, bytes);
            model.cycles_for(bytes)
        });
    }

    copy.sync();
    compute.sync();
    down.sync();

    let tl = rt.timeline_stats();
    println!("\nbatched {batch} instances of {n}³ × {sweeps} sweeps, double-buffered:");
    println!("{tl}");
    assert!(tl.makespan <= tl.serialized);

    // Every instance must match its host reference.
    for (i, out) in outputs.iter().enumerate() {
        let w = Laplace3dWorkload::generate(n);
        let mut cur = w.u.clone();
        for _ in 0..sweeps {
            cur = Laplace3dWorkload { n, u: cur }.reference();
        }
        let got = out.lock();
        let err = got.iter().zip(cur.iter()).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        assert!(err < 1e-9, "instance {i} diverged: {err:.2e}");
    }
    println!("all {batch} instances match the host reference");
}
