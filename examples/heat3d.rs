//! Multi-sweep 3-D heat diffusion driven through the host runtime: data is
//! mapped once (`map(to:)`/`map(from:)` semantics with reference counts),
//! several Jacobi sweeps run on the device, and only the final grid is
//! copied back — the standard `target data` pattern of OpenMP offloading.
//!
//! ```text
//! cargo run --release --example heat3d [n] [sweeps]
//! ```

use simt_omp::gpu::Slot;
use simt_omp::host::HostRuntime;
use simt_omp::kernels::harness::Fig10Variant;
use simt_omp::kernels::laplace3d::{build, Laplace3dWorkload};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let sweeps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let w = Laplace3dWorkload::generate(n);
    let mut grid_a = w.u.clone();
    let mut grid_b = w.u.clone();

    let rt = HostRuntime::new();
    let dev = rt.device(0);
    let kernel = build(108, 128, Fig10Variant::SpmdSimd);

    let mut total_cycles = 0u64;
    {
        let mut md = dev.lock();
        // Enter the data region: one H2D copy per grid.
        let a = md.map_to(&grid_a);
        let b_ptr = md.map_to(&grid_b);
        println!(
            "mapped {} MB to {} (h2d transfers: {})",
            2 * grid_a.len() * 8 / (1 << 20),
            md.dev.arch.name,
            md.xfer.h2d_count
        );

        // Ping-pong sweeps entirely on the device.
        for s in 0..sweeps {
            let (src, dst) = if s % 2 == 0 { (a, b_ptr) } else { (b_ptr, a) };
            let args = [Slot::from_ptr(src), Slot::from_ptr(dst), Slot::from_u64(n as u64)];
            let stats = kernel.run(&mut md.dev, &args);
            total_cycles += stats.cycles;
            println!("sweep {s}: {} cycles", stats.cycles);
        }

        // Exit the data region: D2H copy-back on the last reference.
        md.map_from(&mut grid_a);
        md.map_from(&mut grid_b);
        println!(
            "transfers: {} h2d / {} d2h, {} link cycles",
            md.xfer.h2d_count, md.xfer.d2h_count, md.xfer.cycles
        );
    }

    // Verify one sweep against the host reference.
    let first = w.reference();
    let device_first = if sweeps.is_multiple_of(2) { &grid_a } else { &grid_b };
    let _ = device_first;
    let mut next = first;
    for _ in 1..sweeps {
        let hw = Laplace3dWorkload { n, u: next.clone() };
        next = hw.reference();
    }
    let result = if sweeps % 2 == 1 { &grid_b } else { &grid_a };
    let max_err = result.iter().zip(next.iter()).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!(
        "{sweeps} sweeps on {n}³ grid: {total_cycles} total device cycles, max err {max_err:.2e}"
    );
    assert!(max_err < 1e-9, "device result diverged from host reference");
}
