//! Multi-device offloading: split a sparse matrix–vector product across two
//! simulated GPUs, each fed by its own stream (the paper's Perlmutter node
//! has four A100s; §6.1 uses one, but the host runtime supports more).
//!
//! ```text
//! cargo run --release --example multi_gpu [rows]
//! ```

use simt_omp::gpu::DeviceArch;
use simt_omp::host::HostRuntime;
use simt_omp::kernels::matrix::{CsrMatrix, RowProfile};
use simt_omp::kernels::spmv;

fn main() {
    let rows: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(16_384);
    let half = rows / 2;

    let mat = CsrMatrix::generate(rows, rows, RowProfile::Banded { min: 4, max: 44 }, 42);
    let x: Vec<f64> = (0..rows).map(|i| ((i * 13) % 31) as f64 * 0.0625).collect();
    let want = mat.spmv_ref(&x);

    // Row-split the matrix into two halves (row_ptr rebased per half).
    let top = mat.row_slice(0, half);
    let bottom = mat.row_slice(half, rows);
    top.validate();
    bottom.validate();

    let rt = HostRuntime::with_archs(vec![DeviceArch::a100(), DeviceArch::a100()]);
    println!("devices: {}", rt.num_devices());

    type HalfResult = std::sync::Arc<simt_omp::host::sync::Mutex<(Vec<f64>, u64)>>;
    let results: Vec<HalfResult> = (0..2)
        .map(|_| std::sync::Arc::new(simt_omp::host::sync::Mutex::new((Vec::new(), 0))))
        .collect();

    // Streams from the runtime share one virtual timeline, so the two
    // devices' overlap shows up in `rt.timeline_stats()` below.
    let mut streams = Vec::new();
    for (d, part) in [top, bottom].into_iter().enumerate() {
        let stream = rt.stream(d);
        let xs = x.clone();
        let out = std::sync::Arc::clone(&results[d]);
        stream.enqueue(move |md| {
            let ops = spmv::SpmvDev::upload(&mut md.dev, &part, &xs);
            let k = spmv::build_three_level(108, 128, 8);
            let (y, stats) = spmv::run(&mut md.dev, &k, &ops);
            *out.lock() = (y, stats.cycles);
            stats.cycles
        });
        streams.push(stream);
    }

    // Both devices run concurrently; end-to-end time is the slower one.
    let cycles: Vec<u64> = streams.iter().map(|s| s.sync()).collect();
    let mut y = results[0].lock().0.clone();
    y.extend_from_slice(&results[1].lock().0);

    let max_err = y.iter().zip(&want).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!(
        "split spmv over 2 GPUs: {} and {} cycles (makespan {}), max err {max_err:.1e}",
        cycles[0],
        cycles[1],
        cycles.iter().max().unwrap()
    );
    assert!(max_err < 1e-9);

    // The shared timeline sees both devices: end-to-end simulated time is
    // the slower half, not the sum.
    let tl = rt.timeline_stats();
    println!("{tl}");
    assert_eq!(tl.makespan, *cycles.iter().max().unwrap());

    // Single-device reference for comparison.
    let single = {
        let dev = rt.device(0);
        let mut md = dev.lock();
        let ops = spmv::SpmvDev::upload(&mut md.dev, &mat, &x);
        let k = spmv::build_three_level(108, 128, 8);
        spmv::run(&mut md.dev, &k, &ops).1.cycles
    };
    println!(
        "single device: {single} cycles → dual-GPU speedup {:.2}x",
        single as f64 / *cycles.iter().max().unwrap() as f64
    );
}
