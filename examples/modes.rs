//! Execution-mode explorer: how the same loop nest behaves under
//! generic-vs-SPMD teams and parallel regions, and on an AMD-like device
//! without warp-level barriers (paper §3.1, §3.2, §5.4.1).
//!
//! ```text
//! cargo run --release --example modes
//! ```

use simt_omp::codegen::builder::{Schedule, TargetBuilder};
use simt_omp::gpu::{Device, DeviceArch, Slot};
use simt_omp::rt::config::ExecMode;

/// Build the same saxpy-like kernel with a chosen parallel mode.
fn build(par_mode: Option<ExecMode>, teams_generic: bool) -> simt_omp::codegen::CompiledKernel {
    let mut b = TargetBuilder::new().num_teams(32).threads(128);
    if teams_generic {
        b = b.force_teams_mode(ExecMode::Generic);
    }
    let rows = b.trip_const(2048);
    let inner = b.trip_const(32);
    b.build(|t| {
        let body = move |p: &mut simt_omp::codegen::ParScope<'_>, row: simt_omp::codegen::RegH| {
            p.simd(inner, move |lane, iv, v| {
                let d = v.args[0].as_ptr::<f64>();
                let i = v.regs[row.0].as_u64() * 32 + iv;
                let x = lane.read(d, i);
                lane.work(4);
                lane.write(d, i, x * 0.5 + 1.0);
            });
        };
        match par_mode {
            None => t.distribute_parallel_for(rows, Schedule::Cyclic(1), 8, body),
            Some(mode) => {
                // Force the mode via the explicit-override API.
                t.parallel_with_mode(8, mode, |p| {
                    p.for_loop(rows, Schedule::Cyclic(1), body);
                })
            }
        }
    })
}

fn run(label: &str, arch: DeviceArch, kernel: &simt_omp::codegen::CompiledKernel) {
    let mut dev = Device::new(arch);
    let data = dev.global.alloc_from(&vec![2.0f64; 2048 * 32]);
    let stats = kernel.run(&mut dev, &[Slot::from_ptr(data)]);
    let got = dev.global.read_slice(data, 8);
    assert!(got.iter().all(|&v| v == 2.0));
    println!(
        "{label:<44} {:>8} cycles | posts {:>5} | warp syncs {:>6} | barriers {:>4} | seq-fallbacks {:>5}",
        stats.cycles,
        stats.counters.state_machine_posts,
        stats.counters.warp_syncs,
        stats.counters.block_barriers,
        stats.counters.sequential_simd_fallbacks,
    );
}

fn main() {
    println!("== the same loop nest under different execution models ==\n");

    let inferred = build(None, false);
    println!(
        "inferred modes (tightly nested, uniform trips): teams={:?} parallel={:?}\n",
        inferred.analysis.teams_mode, inferred.analysis.parallels[0].desc.mode
    );

    run("SPMD teams + SPMD parallel (inferred)", DeviceArch::a100(), &inferred);
    run(
        "SPMD teams + generic parallel (forced)",
        DeviceArch::a100(),
        &build(Some(ExecMode::Generic), false),
    );
    run(
        "generic teams + SPMD parallel (forced)",
        DeviceArch::a100(),
        &build(Some(ExecMode::Spmd), true),
    );
    run(
        "generic teams + generic parallel (forced)",
        DeviceArch::a100(),
        &build(Some(ExecMode::Generic), true),
    );
    println!();
    run(
        "AMD wave64: SPMD parallel (supported)",
        DeviceArch::mi100(),
        &build(Some(ExecMode::Spmd), false),
    );
    run(
        "AMD wave64: generic parallel (seq fallback)",
        DeviceArch::mi100(),
        &build(Some(ExecMode::Generic), false),
    );

    println!(
        "\nNotes: generic parallel posts each simd loop through the SIMD state\n\
         machine (warp-level barriers); generic teams add block barriers and an\n\
         extra main warp; AMD-like devices lack wavefront barriers, so generic\n\
         simd loops run sequentially on each SIMD main (paper §5.4.1)."
    );
}
