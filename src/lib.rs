//! # simt-omp — OpenMP's `simd` directive in a simulated GPU runtime
//!
//! Facade crate for the reproduction of *"Implementing OpenMP's SIMD
//! Directive in LLVM's GPU Runtime"* (ICPP 2023). It re-exports the public
//! API of the workspace crates:
//!
//! * [`gpu`] — the deterministic SIMT GPU simulator substrate;
//! * [`rt`] — the OpenMP device runtime with three-level parallelism
//!   (teams / parallel / simd) and its generic & SPMD execution modes;
//! * [`codegen`] — the directive-tree builder ("OpenMP IR Builder" analog):
//!   outlining, payload packing, SPMD-ness analysis, lowering;
//! * [`host`] — the host-side offloading runtime (device table, data
//!   mapping, transfers, deferred target tasks);
//! * [`kernels`] — the paper's evaluation kernels and workload generators.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system map.

pub use gpu_sim as gpu;
pub use omp_codegen as codegen;
pub use omp_core as rt;
pub use omp_host as host;
pub use omp_kernels as kernels;

/// Convenience prelude: the types almost every user needs.
pub mod prelude {
    pub use gpu_sim::{DPtr, Device, DeviceArch, LaunchConfig, LaunchStats, Slot};
    pub use omp_codegen::builder::{Schedule, TargetBuilder};
    pub use omp_core::config::{ExecMode, KernelConfig};
    pub use omp_kernels::harness::KernelRun;
}
