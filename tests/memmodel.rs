//! Differential + golden-shape suite for the hierarchical memory model
//! (`gpu_sim::mem::hier`).
//!
//! Three contracts:
//!
//! 1. **Differential**: every in-tree kernel runs under both memory models
//!    (`Device::set_mem_model` — the env knob is racy under a parallel
//!    test harness) × both execution engines × block-execution thread
//!    counts {1, 4}. Within one model, all four runs must produce
//!    bit-identical [`LaunchStats`] — including every [`MemStats`]
//!    counter, whose block-index-order merge (DESIGN §11) is exactly what
//!    this asserts. Across models, every *charge* counter must agree
//!    (the models reinterpret the same per-block profiles; only the
//!    makespan and its MLP-stall attribution may differ).
//! 2. **Seed pin**: the flat-path results are pinned to the exact values
//!    the pre-hierarchy seed produced, so `SIMT_SIM_MEM=flat` remains a
//!    faithful escape hatch to the old model.
//! 3. **Golden shape**: the Fig 9 speedup curves under the hierarchical
//!    model hold their paper shape — su3's benefit capped at ≤ 2× with
//!    small groups worst, sparse_matvec peaking at an interior group
//!    size, ideal's group-32 factor within ±15% of the paper's 2.15× —
//!    at a reduced size in tier-1 and at full Fig 9 size behind
//!    `#[ignore]` (run with `cargo test --release -- --ignored`).

use simt_omp::codegen::{CompiledKernel, Engine};
use simt_omp::gpu::{Device, DeviceArch, LaunchStats, MemModel, Slot};
use simt_omp::kernels::harness::Fig10Variant;
use simt_omp::kernels::matrix::{CsrMatrix, RowProfile};
use simt_omp::kernels::stencil2d::Stencil2dVariant;
use simt_omp::kernels::{batched, ideal, laplace3d, muram, spmv, stencil2d, su3};
use simt_omp::rt::config::KernelConfig;

/// Run one kernel across the model × engine × sim-thread matrix. Asserts
/// bit-identical stats within each model and charge-counter agreement
/// across models; returns the canonical `(flat, hier)` stats.
fn model_matrix(
    label: &str,
    k: &CompiledKernel,
    arch: &DeviceArch,
    mut setup: impl FnMut(&mut Device) -> Vec<Slot>,
) -> (LaunchStats, LaunchStats) {
    let mut canon: Vec<LaunchStats> = Vec::new();
    for model in [MemModel::Flat, MemModel::Hier] {
        let mut first: Option<LaunchStats> = None;
        for engine in [Engine::Bytecode, Engine::Tree] {
            for threads in [1usize, 4] {
                let mut dev = Device::new(arch.clone());
                dev.set_mem_model(Some(model));
                dev.set_sim_threads(Some(threads));
                let args = setup(&mut dev);
                let stats = k
                    .launch_with_engine(&mut dev, &args, engine)
                    .unwrap_or_else(|e| panic!("{label} {model:?} {engine:?}: {e:?}"));
                match &first {
                    None => first = Some(stats),
                    Some(c) => assert_eq!(
                        *c, stats,
                        "{label} {model:?}: {engine:?} threads={threads} diverged"
                    ),
                }
            }
        }
        canon.push(first.unwrap());
    }
    let (flat, hier) = (canon.remove(0), canon.remove(0));
    // The models share one charge path: every traffic counter agrees.
    assert_eq!(flat.blocks, hier.blocks, "{label}: block count");
    assert_eq!(flat.total_issue, hier.total_issue, "{label}: issue");
    assert_eq!(flat.total_sectors, hier.total_sectors, "{label}: sectors");
    assert_eq!(flat.total_l1_hits, hier.total_l1_hits, "{label}: l1 hits");
    assert_eq!(flat.total_dram_sectors, hier.total_dram_sectors, "{label}: dram");
    let mut flat_mem = flat.mem.clone();
    flat_mem.mlp_stalls = hier.mem.mlp_stalls;
    assert_eq!(flat_mem, hier.mem, "{label}: MemStats diverged beyond mlp_stalls");
    (flat, hier)
}

/// Pin the flat-model stats to the seed's values (captured from the
/// pre-hierarchy tree at these exact configs).
#[allow(clippy::too_many_arguments)]
fn assert_seed(
    label: &str,
    s: &LaunchStats,
    cycles: u64,
    issue: u64,
    sectors: u64,
    l1_hits: u64,
    dram: u64,
    blocks: u32,
) {
    assert_eq!(s.cycles, cycles, "{label}: flat cycles drifted from seed");
    assert_eq!(s.total_issue, issue, "{label}: flat issue drifted from seed");
    assert_eq!(s.total_sectors, sectors, "{label}: flat sectors drifted from seed");
    assert_eq!(s.total_l1_hits, l1_hits, "{label}: flat l1 hits drifted from seed");
    assert_eq!(s.total_dram_sectors, dram, "{label}: flat dram drifted from seed");
    assert_eq!(s.blocks, blocks, "{label}: flat block count drifted from seed");
}

#[test]
fn spmv_models_differential() {
    let mat = CsrMatrix::generate(2048, 2048, RowProfile::Banded { min: 4, max: 44 }, 42);
    let x: Vec<f64> = (0..mat.ncols).map(|i| ((i * 13) % 31) as f64 * 0.0625).collect();
    let k = spmv::build_two_level(108);
    let (flat, _) = model_matrix("spmv two-level", &k, &DeviceArch::a100(), |dev| {
        spmv::SpmvDev::upload(dev, &mat, &x).args().to_vec()
    });
    assert_seed("spmv two-level", &flat, 21_669, 2_055_646, 46_738, 9_982, 26_153, 108);

    let k = spmv::build_three_level(27, 64, 8);
    let (flat, _) = model_matrix("spmv three-level gs=8", &k, &DeviceArch::a100(), |dev| {
        spmv::SpmvDev::upload(dev, &mat, &x).args().to_vec()
    });
    assert_seed("spmv three-level gs=8", &flat, 18_668, 615_768, 43_512, 9_955, 26_153, 27);
}

#[test]
fn su3_models_differential() {
    let w = su3::Su3Workload::generate(1728, 7);
    let k = su3::build(27, 64, 1);
    let (flat, hier) = model_matrix("su3 base", &k, &DeviceArch::a100(), |dev| {
        su3::Su3Dev::upload(dev, &w).args().to_vec()
    });
    assert_seed("su3 base", &flat, 107_447, 5_456_378, 94_339, 776_573, 93_312, 27);
    // The hierarchical model is the whole point for su3: its temporal
    // reuse must stop being charged as issue-serialized replays.
    assert!(
        hier.cycles < flat.cycles,
        "su3 base: hier ({}) should beat flat ({})",
        hier.cycles,
        flat.cycles
    );

    let k = su3::build(27, 64, 8);
    let (flat, _) = model_matrix("su3 gs=8", &k, &DeviceArch::a100(), |dev| {
        su3::Su3Dev::upload(dev, &w).args().to_vec()
    });
    assert_seed("su3 gs=8", &flat, 34_548, 1_483_704, 93_312, 148_608, 93_312, 27);
}

#[test]
fn ideal_models_differential() {
    let w = ideal::IdealWorkload::generate(6912, 3);
    let k = ideal::build(27, 64, 8);
    let (flat, _) = model_matrix("ideal gs=8", &k, &DeviceArch::a100(), |dev| {
        ideal::IdealDev::upload(dev, &w).args().to_vec()
    });
    assert_seed("ideal gs=8", &flat, 20_548, 687_960, 112_320, 0, 112_320, 27);
}

#[test]
fn laplace3d_models_differential() {
    let w = laplace3d::Laplace3dWorkload::generate(18);
    let pins = [
        (Fig10Variant::NoSimd, 6_456u64, 30_912u64, 1_132u64),
        (Fig10Variant::SpmdSimd, 7_270, 40_960, 1_472),
        (Fig10Variant::GenericSimd, 8_786, 65_216, 1_472),
    ];
    for (variant, cycles, issue, hits) in pins {
        let k = laplace3d::build(8, 64, variant);
        let label = format!("laplace3d {}", variant.label());
        let (flat, _) = model_matrix(&label, &k, &DeviceArch::a100(), |dev| {
            laplace3d::Laplace3dDev::upload(dev, &w).args().to_vec()
        });
        assert_seed(&label, &flat, cycles, issue, 5_024, hits, 2_610, 8);
    }
}

#[test]
fn muram_models_differential() {
    let w = muram::MuramWorkload::generate(16);
    let k = muram::build(muram::MuramKernel::Transpose, 8, 64, Fig10Variant::SpmdSimd);
    let (flat, _) = model_matrix("muram transpose", &k, &DeviceArch::a100(), |dev| {
        muram::MuramDev::upload(dev, &w).args().to_vec()
    });
    assert_seed("muram transpose", &flat, 6_652, 38_464, 2_048, 3_072, 2_048, 8);

    let k = muram::build(muram::MuramKernel::Interpol, 8, 64, Fig10Variant::GenericSimd);
    let (flat, _) = model_matrix("muram interpol", &k, &DeviceArch::a100(), |dev| {
        muram::MuramDev::upload(dev, &w).args().to_vec()
    });
    assert_seed("muram interpol", &flat, 6_960, 42_240, 2_048, 256, 2_048, 8);
}

#[test]
fn stencil2d_models_differential() {
    let w = stencil2d::Stencil2dWorkload::generate(37, 14);
    let k = stencil2d::build(
        6,
        64,
        8,
        KernelConfig::SHARING_SPACE_DEFAULT,
        Stencil2dVariant::HaloShared,
    );
    let (flat, _) = model_matrix("stencil2d halo", &k, &DeviceArch::a100(), |dev| {
        stencil2d::Stencil2dDev::upload(dev, &w, 8).args().to_vec()
    });
    assert_seed("stencil2d halo", &flat, 5_703, 19_818, 504, 125, 241, 6);
}

#[test]
fn batched_models_differential() {
    let w = batched::BatchedWorkload::generate(4, 8, 8);
    let k = batched::build(2, 64, 8, w.n_bodies, batched::DispatchMode::Cascade);
    let (flat, _) = model_matrix("batched cascade", &k, &DeviceArch::a100(), |dev| {
        batched::BatchedDev::upload(dev, &w).args().to_vec()
    });
    assert_seed("batched cascade", &flat, 4_926, 1_916, 128, 0, 128, 2);
}

/// MemStats merge bit-identity at every supported worker count — the
/// block-index-order fold must make the merged counters independent of
/// how blocks were partitioned across threads.
#[test]
fn memstats_merge_is_thread_count_invariant() {
    let w = su3::Su3Workload::generate(1728, 7);
    let k = su3::build(27, 64, 8);
    let mut canon: Option<LaunchStats> = None;
    for threads in [1usize, 2, 4, 8] {
        let mut dev = Device::a100();
        dev.set_sim_threads(Some(threads));
        let ops = su3::Su3Dev::upload(&mut dev, &w);
        let (_, stats) = su3::run(&mut dev, &k, &ops);
        assert!(stats.mem.l1_hits > 0 && stats.mem.dram_atoms > 0, "counters populated");
        match &canon {
            None => canon = Some(stats),
            Some(c) => assert_eq!(*c, stats, "threads={threads}: merge not bit-identical"),
        }
    }
}

// ---------------------------------------------------------------------------
// Golden-shape regression: Fig 9 curves under the hierarchical model.
// ---------------------------------------------------------------------------

const GROUP_SIZES: [u32; 6] = [1, 2, 4, 8, 16, 32];

fn su3_sweep(sites: usize, teams: u32, threads: u32) -> Vec<u64> {
    let w = su3::Su3Workload::generate(sites, 7);
    GROUP_SIZES
        .iter()
        .map(|&gs| {
            let mut dev = Device::a100();
            dev.set_mem_model(Some(MemModel::Hier));
            let ops = su3::Su3Dev::upload(&mut dev, &w);
            su3::run(&mut dev, &su3::build(teams, threads, gs), &ops).1.cycles
        })
        .collect()
}

fn ideal_sweep(outer: usize, teams: u32, threads: u32) -> Vec<u64> {
    let w = ideal::IdealWorkload::generate(outer, 3);
    GROUP_SIZES
        .iter()
        .map(|&gs| {
            let mut dev = Device::a100();
            dev.set_mem_model(Some(MemModel::Hier));
            let ops = ideal::IdealDev::upload(&mut dev, &w);
            ideal::run(&mut dev, &ideal::build(teams, threads, gs), &ops).1.cycles
        })
        .collect()
}

/// spmv sweep: `[base, gs=2, 4, 8, 16, 32]` cycles.
fn spmv_sweep(rows: usize, base_teams: u32, teams: u32, threads: u32) -> Vec<u64> {
    let mat = CsrMatrix::generate(rows, rows, RowProfile::Banded { min: 4, max: 44 }, 42);
    let x: Vec<f64> = (0..mat.ncols).map(|i| ((i * 13) % 31) as f64 * 0.0625).collect();
    let mut out = Vec::new();
    {
        let mut dev = Device::a100();
        dev.set_mem_model(Some(MemModel::Hier));
        let ops = spmv::SpmvDev::upload(&mut dev, &mat, &x);
        out.push(spmv::run(&mut dev, &spmv::build_two_level(base_teams), &ops).1.cycles);
    }
    for gs in [2u32, 4, 8, 16, 32] {
        let mut dev = Device::a100();
        dev.set_mem_model(Some(MemModel::Hier));
        let ops = spmv::SpmvDev::upload(&mut dev, &mat, &x);
        out.push(spmv::run(&mut dev, &spmv::build_three_level(teams, threads, gs), &ops).1.cycles);
    }
    out
}

fn ratios(cycles: &[u64]) -> Vec<f64> {
    cycles.iter().map(|&c| cycles[0] as f64 / c as f64).collect()
}

fn assert_su3_shape(r: &[f64], cap: f64) {
    let max = r.iter().cloned().fold(0.0f64, f64::max);
    assert!(max <= cap, "su3 max benefit {max:.3} exceeds {cap} (curve {r:?})");
    // Small groups are the worst performers: strictly rising up to gs=8.
    assert!(
        r[0] < r[1] && r[1] < r[2] && r[2] < r[3],
        "su3 benefit must rise through small group sizes (curve {r:?})"
    );
}

fn assert_spmv_interior_peak(r: &[f64]) {
    let peak = (0..r.len()).max_by(|&a, &b| r[a].partial_cmp(&r[b]).unwrap()).unwrap();
    assert!(
        peak != 0 && peak != r.len() - 1,
        "sparse_matvec peak must be at an interior group size (curve {r:?})"
    );
}

/// Tier-1 variant at reduced size (~5 s in debug). Bands are pinned to
/// the measured curve at this size; the paper-band asserts run at full
/// Fig 9 size in [`golden_shape_full`].
#[test]
fn golden_shape_quick() {
    let su3_r = ratios(&su3_sweep(1728, 27, 64));
    assert_su3_shape(&su3_r, 2.0);

    let spmv_r = ratios(&spmv_sweep(2048, 108, 27, 64));
    assert_spmv_interior_peak(&spmv_r);

    let ideal_r = ratios(&ideal_sweep(6912, 27, 64));
    // At this size the curve peaks at gs=16 (group-32 divergence overhead
    // shows at small trip counts); pin the peak region.
    assert!(
        ideal_r[4] > 1.65 && ideal_r[4] < 2.0,
        "ideal gs=16 factor {:.3} outside measured band (curve {ideal_r:?})",
        ideal_r[4]
    );
    assert!(
        ideal_r[5] > 1.45,
        "ideal gs=32 factor {:.3} collapsed (curve {ideal_r:?})",
        ideal_r[5]
    );
}

/// Full Fig 9 geometry — the paper-shape contract. Release-only
/// (`cargo test --release -- --ignored`): several minutes in debug.
#[test]
#[ignore = "full Fig 9 size; run with --release -- --ignored"]
fn golden_shape_full() {
    // su3_bench: benefit capped at ≤ 2× (paper: ~1.3×), small groups
    // worst — the deviation the hierarchical model exists to fix.
    let su3_r = ratios(&su3_sweep(55_296, 108, 128));
    assert_su3_shape(&su3_r, 2.0);

    // sparse_matvec keeps its interior peak.
    let spmv_r = ratios(&spmv_sweep(65_536, 3_456, 108, 128));
    assert_spmv_interior_peak(&spmv_r);
    let peak = (0..spmv_r.len()).max_by(|&a, &b| spmv_r[a].partial_cmp(&spmv_r[b]).unwrap());
    assert_eq!(peak, Some(2), "sparse_matvec peak moved off gs=4 (curve {spmv_r:?})");

    // ideal: group-32 factor within ±15% of the paper's 2.15×.
    let ideal_r = ratios(&ideal_sweep(55_296, 108, 128));
    assert!(
        (1.8275..=2.4725).contains(&ideal_r[5]),
        "ideal gs=32 factor {:.3} outside 2.15 ± 15% (curve {ideal_r:?})",
        ideal_r[5]
    );
}
