//! Cross-backend differential matrix: every in-tree kernel, plus a seeded
//! stream of random portable plans, run on both registered GPU backends.
//!
//! For each kernel × architecture the suite goes through
//! [`CompiledKernel::launch_oracle`] (tree walker vs flat bytecode,
//! bit-identical stats and memory required), across block-execution thread
//! counts and with the sanitizer armed — then asserts the **host-visible
//! results are bit-equal between a100 and mi100**. The wave64 backend has
//! no wavefront-level barrier, so every generic-mode simd region reaches
//! the output through sequential-simd legalization (§5.4.1); equality here
//! is the proof that legalization is a pure scheduling rewrite, not a
//! numerics change.

use simt_omp::codegen::CompiledKernel;
use simt_omp::gpu::{Device, DeviceArch, Slot};
use simt_omp::kernels::harness::Fig10Variant;
use simt_omp::kernels::matrix::{CsrMatrix, RowProfile};
use simt_omp::kernels::plangen::{self, random_portable_kernel};
use simt_omp::kernels::{batched, ideal, laplace3d, muram, spmv, stencil2d, su3};
use testkit::cases;

/// Uploads a workload onto a fresh device; returns the argument payload
/// and a reader for the host-visible output.
type Setup<'a> = &'a mut dyn FnMut(&mut Device) -> (Vec<Slot>, Box<dyn Fn(&Device) -> Vec<f64>>);

/// Run `k` on one architecture: lint gate (errors forbidden, remarks
/// fine), differential oracle across sim-thread counts with stats pinned
/// across them, one sanitized run that must stay violation-free. Returns
/// the output bits.
fn run_on(label: &str, k: &CompiledKernel, arch: &DeviceArch, setup: Setup<'_>) -> Vec<u64> {
    let mut bits: Option<Vec<u64>> = None;
    let mut stats0 = None;
    for (threads, sanitize) in [(1usize, false), (4, false), (1, true)] {
        let mut dev = Device::new(arch.clone());
        dev.set_sim_threads(Some(threads));
        if sanitize {
            dev.enable_sanitizer();
        }
        let (args, read) = setup(&mut dev);
        let report = k.lint(arch, args.len());
        assert!(
            !report.has_errors(),
            "{label} on {}: simtlint rejected a portable kernel:\n{}",
            arch.name,
            report.render(label)
        );
        let stats = k
            .launch_oracle(&mut dev, &args)
            .unwrap_or_else(|e| panic!("{label} on {} (threads={threads}): {e:?}", arch.name));
        assert!(
            stats.violations.is_empty(),
            "{label} on {}: sanitizer violations {:#?}",
            arch.name,
            stats.violations
        );
        let out: Vec<u64> = read(&dev).iter().map(|x| x.to_bits()).collect();
        match &bits {
            None => bits = Some(out),
            Some(prev) => assert_eq!(
                prev, &out,
                "{label} on {}: results vary with the simulation config",
                arch.name
            ),
        }
        if !sanitize {
            match &stats0 {
                None => stats0 = Some(stats),
                Some(s0) => assert_eq!(
                    s0, &stats,
                    "{label} on {}: stats vary with SIMT_SIM_THREADS",
                    arch.name
                ),
            }
        }
    }
    bits.expect("at least one configuration ran")
}

/// The cross-backend assertion: same plan, both registered backends,
/// bit-equal host-visible results.
fn cross_arch(label: &str, k: &CompiledKernel, setup: Setup<'_>) {
    let nv = run_on(label, k, &DeviceArch::a100(), setup);
    let amd = run_on(label, k, &DeviceArch::mi100(), setup);
    assert_eq!(nv, amd, "{label}: a100 and mi100 host-visible results differ");
}

#[test]
fn ideal_matches_across_backends() {
    let w = ideal::IdealWorkload::generate(24, 7);
    for gs in [1u32, 8, 32] {
        let k = ideal::build(4, 64, gs);
        cross_arch(&format!("ideal gs={gs}"), &k, &mut |dev| {
            let d = ideal::IdealDev::upload(dev, &w);
            (d.args().to_vec(), Box::new(move |dev: &Device| d.read_out(dev)))
        });
    }
    // Forced-generic: the state machine on a100, legalized on mi100.
    let k = ideal::build_forced_generic(2, 64, 8);
    cross_arch("ideal forced-generic", &k, &mut |dev| {
        let d = ideal::IdealDev::upload(dev, &w);
        (d.args().to_vec(), Box::new(move |dev: &Device| d.read_out(dev)))
    });
}

#[test]
fn su3_matches_across_backends() {
    let w = su3::Su3Workload::generate(24, 5);
    let k = su3::build(4, 64, 8);
    cross_arch("su3", &k, &mut |dev| {
        let d = su3::Su3Dev::upload(dev, &w);
        (d.args().to_vec(), Box::new(move |dev: &Device| d.read_c(dev)))
    });
}

#[test]
fn stencil2d_matches_across_backends() {
    let w = stencil2d::Stencil2dWorkload::generate(34, 18);
    // sharing = 64 forces the per-group staging fallback (lint-clean, a
    // warning); 0 would be an E-TEAM-POST lint error, so it stays in the
    // unlinted engine-agreement suite only.
    for sharing in [64u32, 4096] {
        let k = stencil2d::build(2, 64, 8, sharing, stencil2d::Stencil2dVariant::HaloShared);
        cross_arch(&format!("stencil2d sharing={sharing}"), &k, &mut |dev| {
            let d = stencil2d::Stencil2dDev::upload(dev, &w, 8);
            (d.args().to_vec(), Box::new(move |dev: &Device| d.read_out(dev)))
        });
    }
    let k = stencil2d::build_default(2, 64, 8);
    cross_arch("stencil2d default", &k, &mut |dev| {
        let d = stencil2d::Stencil2dDev::upload(dev, &w, 8);
        (d.args().to_vec(), Box::new(move |dev: &Device| d.read_out(dev)))
    });
}

#[test]
fn muram_matches_across_backends() {
    let w = muram::MuramWorkload::generate(10);
    for which in [muram::MuramKernel::Transpose, muram::MuramKernel::Interpol] {
        for variant in Fig10Variant::ALL {
            let k = muram::build(which, 2, 64, variant);
            cross_arch(&format!("muram {which:?} {}", variant.label()), &k, &mut |dev| {
                let d = muram::MuramDev::upload(dev, &w);
                (d.args().to_vec(), Box::new(move |dev: &Device| d.read_out(dev)))
            });
        }
    }
}

#[test]
fn laplace3d_matches_across_backends() {
    let w = laplace3d::Laplace3dWorkload::generate(12);
    for variant in Fig10Variant::ALL {
        let k = laplace3d::build(2, 64, variant);
        cross_arch(&format!("laplace3d {}", variant.label()), &k, &mut |dev| {
            let d = laplace3d::Laplace3dDev::upload(dev, &w);
            (d.args().to_vec(), Box::new(move |dev: &Device| d.read_out(dev)))
        });
    }
}

#[test]
fn batched_matches_across_backends() {
    let w = batched::BatchedWorkload::generate(4, 8, 8);
    for mode in [
        batched::DispatchMode::Cascade,
        batched::DispatchMode::Extern,
        batched::DispatchMode::Mixed,
    ] {
        let k = batched::build(2, 64, 8, w.n_bodies, mode);
        cross_arch(&format!("batched {mode:?}"), &k, &mut |dev| {
            let d = batched::BatchedDev::upload(dev, &w);
            (d.args().to_vec(), Box::new(move |dev: &Device| d.read_out(dev)))
        });
    }
}

#[test]
fn spmv_matches_across_backends() {
    let mat = CsrMatrix::generate(64, 96, RowProfile::Banded { min: 4, max: 20 }, 11);
    let x: Vec<f64> = (0..mat.ncols).map(|i| ((i * 7) % 13) as f64 * 0.25).collect();
    let kernels = [
        // 64-thread two-level: one whole wavefront per team on mi100.
        ("two-level", spmv::build_two_level_on(8, 64)),
        ("three-level", spmv::build_three_level(8, 64, 8)),
        ("three-level-reduce", spmv::build_three_level_reduce(8, 64, 8)),
    ];
    for (name, k) in &kernels {
        cross_arch(&format!("spmv {name}"), k, &mut |dev| {
            let d = spmv::SpmvDev::upload(dev, &mat, &x);
            (d.args().to_vec(), Box::new(move |dev: &Device| d.read_y(dev)))
        });
    }
}

#[test]
fn random_portable_plans_match_across_backends() {
    // 40 seeded random plans at portable geometry: one compiled plan,
    // both backends, bit-equal output. Workload parameters are drawn
    // before the arch loop so both backends see identical inputs.
    cases("random_portable_plans_match_across_backends", 40, |rng| {
        let k = random_portable_kernel(rng);
        let tbl = [rng.range_u64(0, 7), rng.range_u64(1, 9)];
        let n = rng.range_u64(1, 7);
        let sim_threads = if rng.flip() { 1 } else { 4 };
        // The fuzz surface includes deliberately degenerate plans (e.g.
        // sharing_space = 0 → E-TEAM-POST), so the lint contract here is
        // not "clean": it is that the wave64 backend reports exactly the
        // same errors as a100 — legalization demotes E-ARCH to a remark,
        // so going wave64 never *adds* an error.
        let baseline: Vec<&str> = {
            let r = k.lint(&DeviceArch::a100(), 3);
            r.diags
                .iter()
                .filter(|d| d.severity == simt_omp::codegen::diag::Severity::Error)
                .map(|d| d.code)
                .collect()
        };
        let mut first: Option<Vec<u64>> = None;
        for arch in [DeviceArch::a100(), DeviceArch::mi100()] {
            let report = k.lint(&arch, 3);
            let errors: Vec<&str> = report
                .diags
                .iter()
                .filter(|d| d.severity == simt_omp::codegen::diag::Severity::Error)
                .map(|d| d.code)
                .collect();
            assert_eq!(
                errors,
                baseline,
                "random plan on {}: backend changed the error set:\n{}",
                arch.name,
                report.render("plangen")
            );
            assert!(
                report.with_code("E-ARCH").next().is_none(),
                "random plan on {}: E-ARCH must demote for barrier-free simd bodies:\n{}",
                arch.name,
                report.render("plangen")
            );
            let name = arch.name;
            let mut dev = Device::new(arch);
            dev.set_sim_threads(Some(sim_threads));
            let out = dev.global.alloc_zeroed::<f64>(plangen::OUT_SLOTS);
            let dtbl = dev.global.alloc_from(&tbl);
            let args = [Slot::from_ptr(out), Slot::from_ptr(dtbl), Slot::from_u64(n)];
            k.launch_oracle(&mut dev, &args)
                .unwrap_or_else(|e| panic!("random plan on {name}: {e:?}"));
            let bits: Vec<u64> = dev
                .global
                .read_slice(out, plangen::OUT_SLOTS)
                .iter()
                .map(|x| x.to_bits())
                .collect();
            match &first {
                None => first = Some(bits),
                Some(nv) => {
                    assert_eq!(nv, &bits, "random plan: backend results differ")
                }
            }
        }
    });
}

#[test]
fn legalization_is_never_faster_at_equal_geometry() {
    // Monotonicity of the §5.4.1 fallback, isolated from every other
    // backend difference: two archs identical except for the warp-sync
    // capability bit. The legalized run serializes each group's simd work
    // onto its leader, so at equal geometry it can never undercut the
    // warp-synchronous state machine.
    let with_sync = DeviceArch::a100();
    let mut no_sync = DeviceArch::a100();
    no_sync.name = "sim-A100-no-warp-sync";
    no_sync.warp_sync_supported = false;

    let w = ideal::IdealWorkload::generate(24, 5);
    let k = ideal::build_forced_generic(2, 64, 8);
    let run = |arch: &DeviceArch| {
        let mut dev = Device::new(arch.clone());
        dev.set_sim_threads(Some(1));
        let d = ideal::IdealDev::upload(&mut dev, &w);
        let stats = k.launch_oracle(&mut dev, &d.args()).expect("launch failed");
        let bits: Vec<u64> = d.read_out(&dev).iter().map(|x| x.to_bits()).collect();
        (stats, bits)
    };
    let (sm, sm_bits) = run(&with_sync);
    let (seq, seq_bits) = run(&no_sync);
    assert_eq!(sm.counters.sequential_simd_fallbacks, 0);
    assert!(seq.counters.sequential_simd_fallbacks > 0, "no-warp-sync arch must legalize");
    assert_eq!(sm_bits, seq_bits, "legalization changed the results");
    assert!(
        seq.cycles >= sm.cycles,
        "sequential-simd legalization beat the state machine: {} < {}",
        seq.cycles,
        sm.cycles
    );
}
