//! Cross-crate integration tests: host runtime + compiler layer + device
//! runtime + kernels working together through the public facade.

use simt_omp::codegen::builder::{Schedule, TargetBuilder};
use simt_omp::gpu::{Device, DeviceArch, Slot};
use simt_omp::host::{HelperPool, HostRuntime};
use simt_omp::kernels::harness::{max_abs_err, Fig10Variant};
use simt_omp::kernels::matrix::{CsrMatrix, RowProfile};
use simt_omp::kernels::{laplace3d, muram, spmv, su3};
use simt_omp::rt::config::ExecMode;
use std::sync::Arc;

#[test]
fn offload_roundtrip_through_host_runtime() {
    // map(to:) → kernel → map(from:) with reference-counted entries.
    let rt = HostRuntime::new();
    let dev = rt.device(0);
    let host_in: Vec<f64> = (0..4096).map(|i| i as f64 * 0.5).collect();
    let mut host_out = vec![0.0f64; 4096];

    let mut b = TargetBuilder::new().num_teams(16).threads(128);
    let rows = b.trip_const(128);
    let inner = b.trip_const(32);
    let k = b.build(|t| {
        t.distribute_parallel_for(rows, Schedule::Cyclic(1), 8, |p, row| {
            p.simd(inner, move |lane, iv, v| {
                let src = v.args[0].as_ptr::<f64>();
                let dst = v.args[1].as_ptr::<f64>();
                let i = v.regs[row.0].as_u64() * 32 + iv;
                let x = lane.read(src, i);
                lane.write(dst, i, x + 1.0);
            });
        });
    });

    {
        let mut md = dev.lock();
        let src = md.map_to(&host_in);
        let dst = md.map_alloc(&host_out);
        k.run(&mut md.dev, &[Slot::from_ptr(src), Slot::from_ptr(dst)]);
        md.map_release(&host_in);
        md.map_from(&mut host_out);
        assert_eq!(md.mapped_entries(), 0);
        assert_eq!(md.xfer.h2d_count, 1);
        assert_eq!(md.xfer.d2h_count, 1);
    }
    for i in 0..4096 {
        assert_eq!(host_out[i], host_in[i] + 1.0);
    }
}

#[test]
fn deferred_target_tasks_on_helper_threads() {
    // Four `target nowait` kernels on one device, drained by `taskwait`.
    let rt = HostRuntime::new();
    let dev = rt.device(0);
    let mut ptrs = Vec::new();
    {
        let md = dev.lock();
        for _ in 0..4 {
            ptrs.push(md.dev.global.alloc_zeroed::<f64>(1024));
        }
    }
    let pool = HelperPool::new(2);
    for (t, p) in ptrs.iter().copied().enumerate() {
        let dev = Arc::clone(&dev);
        pool.submit(move || {
            let mut b = TargetBuilder::new().num_teams(4).threads(64);
            let n = b.trip_const(32);
            let inner = b.trip_const(32);
            let k = b.build(|t| {
                t.distribute_parallel_for(n, Schedule::Cyclic(1), 4, |pp, row| {
                    pp.simd(inner, move |lane, iv, v| {
                        let d = v.args[0].as_ptr::<f64>();
                        let i = v.regs[row.0].as_u64() * 32 + iv;
                        lane.write(d, i, v.args[1].as_f64());
                    });
                });
            });
            let mut md = dev.lock();
            k.run(&mut md.dev, &[Slot::from_ptr(p), Slot::from_f64(t as f64 + 1.0)]);
        });
    }
    pool.wait_all();
    let md = dev.lock();
    for (t, p) in ptrs.iter().copied().enumerate() {
        let got = md.dev.global.read_slice(p, 1024);
        assert!(got.iter().all(|&v| v == t as f64 + 1.0), "task {t} output wrong");
    }
}

#[test]
fn three_level_spmv_beats_two_level_baseline() {
    // The Fig 9 headline claim at reduced size: the simd version wins, and
    // group size 32 is worse than mid sizes for varying-sparsity rows.
    let mat = CsrMatrix::generate(8192, 8192, RowProfile::Banded { min: 4, max: 44 }, 42);
    let x: Vec<f64> = (0..8192).map(|i| (i % 17) as f64).collect();
    let want = mat.spmv_ref(&x);

    let base = {
        let mut dev = Device::a100();
        let ops = spmv::SpmvDev::upload(&mut dev, &mat, &x);
        let k = spmv::build_two_level(864);
        let (y, s) = spmv::run(&mut dev, &k, &ops);
        assert!(max_abs_err(&y, &want) < 1e-9);
        s.cycles
    };
    let run_gs = |gs: u32| {
        let mut dev = Device::a100();
        let ops = spmv::SpmvDev::upload(&mut dev, &mat, &x);
        let k = spmv::build_three_level(108, 128, gs);
        let (y, s) = spmv::run(&mut dev, &k, &ops);
        assert!(max_abs_err(&y, &want) < 1e-9, "gs={gs}");
        s.cycles
    };
    let gs8 = run_gs(8);
    let gs32 = run_gs(32);
    assert!(gs8 * 2 < base, "3-level gs8 should be >2x faster: {gs8} vs {base}");
    assert!(gs8 < gs32, "mid group sizes beat 32 on varying sparsity");
}

#[test]
fn fig10_mode_ordering_holds() {
    // SPMD-SIMD within ±15% of No-SIMD; generic strictly slower than SPMD.
    for which in [muram::MuramKernel::Transpose, muram::MuramKernel::Interpol] {
        let w = muram::MuramWorkload::generate(48);
        let cycles = |v: Fig10Variant| {
            let mut dev = Device::a100();
            let ops = muram::MuramDev::upload(&mut dev, &w);
            let k = muram::build(which, 108, 128, v);
            let (out, s) = muram::run(&mut dev, &k, &ops);
            assert_eq!(out, w.reference(which), "{which:?} {v:?}");
            s.cycles as f64
        };
        let no = cycles(Fig10Variant::NoSimd);
        let spmd = cycles(Fig10Variant::SpmdSimd);
        let generic = cycles(Fig10Variant::GenericSimd);
        assert!(
            (no / spmd - 1.0).abs() < 0.15,
            "{which:?}: SPMD ({spmd}) should track No-SIMD ({no})"
        );
        assert!(generic > spmd, "{which:?}: generic must pay the state machine");
    }
}

#[test]
fn laplace_all_variants_verified_on_both_vendors() {
    let w = laplace3d::Laplace3dWorkload::generate(20);
    let want = w.reference();
    for arch in [DeviceArch::a100(), DeviceArch::mi100()] {
        for v in Fig10Variant::ALL {
            let mut dev = Device::new(arch.clone());
            let ops = laplace3d::Laplace3dDev::upload(&mut dev, &w);
            let k = laplace3d::build(8, 64, v);
            let (out, _) = laplace3d::run(&mut dev, &k, &ops);
            assert!(max_abs_err(&out, &want) < 1e-12, "{} {v:?}", arch.name);
        }
    }
}

#[test]
fn su3_results_identical_across_group_sizes_and_modes() {
    let w = su3::Su3Workload::generate(256, 3);
    let want = w.reference();
    let mut cycle_set = Vec::new();
    for gs in [1u32, 4, 32] {
        let mut dev = Device::a100();
        let ops = su3::Su3Dev::upload(&mut dev, &w);
        let k = su3::build(16, 64, gs);
        let (c, s) = su3::run(&mut dev, &k, &ops);
        assert!(max_abs_err(&c, &want) < 1e-12, "gs={gs}");
        cycle_set.push(s.cycles);
    }
    // Different group sizes genuinely execute differently.
    assert!(cycle_set.windows(2).any(|w| w[0] != w[1]));
}

#[test]
fn reduction_extension_agrees_with_atomics() {
    let mat = CsrMatrix::generate(2048, 2048, RowProfile::PowerLaw { min: 2, cap: 120 }, 9);
    let x: Vec<f64> = (0..2048).map(|i| ((i * 7) % 23) as f64 * 0.125).collect();
    let want = mat.spmv_ref(&x);
    let mut dev = Device::a100();
    let ops = spmv::SpmvDev::upload(&mut dev, &mat, &x);
    let atomic_k = spmv::build_three_level(32, 128, 8);
    let (ya, sa) = spmv::run(&mut dev, &atomic_k, &ops);
    let reduce_k = spmv::build_three_level_reduce(32, 128, 8);
    let (yr, sr) = spmv::run(&mut dev, &reduce_k, &ops);
    assert!(max_abs_err(&ya, &want) < 1e-9);
    assert!(max_abs_err(&yr, &want) < 1e-9);
    assert!(
        sr.cycles < sa.cycles,
        "tree reduction ({}) should beat per-lane atomics ({})",
        sr.cycles,
        sa.cycles
    );
}

#[test]
fn mode_inference_matches_paper_assignments() {
    // §6.3's mode table, checked through the public API.
    let two = spmv::build_two_level(64);
    assert_eq!(two.analysis.teams_mode, ExecMode::Generic);
    let three = spmv::build_three_level(64, 128, 8);
    assert_eq!(three.analysis.teams_mode, ExecMode::Spmd);
    assert_eq!(three.analysis.parallels[0].desc.mode, ExecMode::Generic);
    let s = su3::build(64, 128, 4);
    assert_eq!(s.analysis.teams_mode, ExecMode::Spmd);
    assert_eq!(s.analysis.parallels[0].desc.mode, ExecMode::Spmd);
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let mat = CsrMatrix::generate(1024, 1024, RowProfile::Banded { min: 2, max: 30 }, 5);
        let x: Vec<f64> = (0..1024).map(|i| i as f64).collect();
        let mut dev = Device::a100();
        let ops = spmv::SpmvDev::upload(&mut dev, &mat, &x);
        let k = spmv::build_three_level(16, 128, 4);
        spmv::run(&mut dev, &k, &ops).1.cycles
    };
    assert_eq!(run(), run());
}
