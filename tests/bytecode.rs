//! Differential property suite: the flat-bytecode engine against the
//! tree-walk oracle.
//!
//! Every case goes through [`CompiledKernel::launch_oracle`], which runs
//! the tree walker, snapshots the memory image, rewinds, runs the bytecode
//! engine, and asserts bit-identical [`LaunchStats`] (cycles, every runtime
//! counter, sanitizer violations) and host-visible memory. The matrix
//! covers every in-tree kernel and a seeded stream of random plans, each ×
//! block-execution thread counts {1, 4} × sanitizer {off, on}.

use simt_omp::codegen::CompiledKernel;
use simt_omp::gpu::{Device, DeviceArch, Slot};
use simt_omp::kernels::harness::Fig10Variant;
use simt_omp::kernels::matrix::{CsrMatrix, RowProfile};
use simt_omp::kernels::plangen::{self, random_kernel};
use simt_omp::kernels::{batched, ideal, laplace3d, muram, spmv, stencil2d, su3};
use testkit::cases;

/// Run one kernel through the oracle across the sim-thread / sanitizer
/// matrix. `setup` uploads the workload and returns the argument payload.
fn oracle_matrix(
    label: &str,
    k: &CompiledKernel,
    arch: &DeviceArch,
    mut setup: impl FnMut(&mut Device) -> Vec<Slot>,
) {
    for threads in [1usize, 4] {
        for sanitize in [false, true] {
            let mut dev = Device::new(arch.clone());
            dev.set_sim_threads(Some(threads));
            if sanitize {
                dev.enable_sanitizer();
            }
            let args = setup(&mut dev);
            k.launch_oracle(&mut dev, &args)
                .unwrap_or_else(|e| panic!("{label} (threads={threads}): {e:?}"));
        }
    }
}

#[test]
fn ideal_kernel_engines_agree() {
    let w = ideal::IdealWorkload::generate(48, 7);
    for gs in [1u32, 8, 32] {
        let k = ideal::build(4, 64, gs);
        oracle_matrix(&format!("ideal gs={gs}"), &k, &DeviceArch::a100(), |dev| {
            ideal::IdealDev::upload(dev, &w).args().to_vec()
        });
    }
    // Forced-generic variant: state-machine posting + staged dispatch.
    let k = ideal::build_forced_generic(2, 64, 8);
    oracle_matrix("ideal forced-generic", &k, &DeviceArch::a100(), |dev| {
        ideal::IdealDev::upload(dev, &w).args().to_vec()
    });
}

#[test]
fn su3_kernel_engines_agree() {
    let w = su3::Su3Workload::generate(32, 5);
    let k = su3::build(4, 64, 8);
    oracle_matrix("su3", &k, &DeviceArch::a100(), |dev| {
        su3::Su3Dev::upload(dev, &w).args().to_vec()
    });
}

#[test]
fn stencil2d_kernel_engines_agree() {
    let w = stencil2d::Stencil2dWorkload::generate(34, 18);
    // Tight sharing budgets force the zero-slot / overflow global-fallback
    // staging paths through both engines.
    for sharing in [0u32, 64, 4096] {
        let k = stencil2d::build(2, 64, 8, sharing, stencil2d::Stencil2dVariant::HaloShared);
        oracle_matrix(&format!("stencil2d sharing={sharing}"), &k, &DeviceArch::a100(), |dev| {
            stencil2d::Stencil2dDev::upload(dev, &w, 8).args().to_vec()
        });
    }
    let k = stencil2d::build_default(2, 64, 8);
    oracle_matrix("stencil2d default", &k, &DeviceArch::a100(), |dev| {
        stencil2d::Stencil2dDev::upload(dev, &w, 8).args().to_vec()
    });
}

#[test]
fn muram_kernels_engines_agree() {
    let w = muram::MuramWorkload::generate(12);
    for which in [muram::MuramKernel::Transpose, muram::MuramKernel::Interpol] {
        for variant in Fig10Variant::ALL {
            let k = muram::build(which, 2, 64, variant);
            oracle_matrix(
                &format!("muram {which:?} {}", variant.label()),
                &k,
                &DeviceArch::a100(),
                |dev| muram::MuramDev::upload(dev, &w).args().to_vec(),
            );
        }
    }
}

#[test]
fn laplace3d_kernel_engines_agree() {
    let w = laplace3d::Laplace3dWorkload::generate(14);
    for variant in Fig10Variant::ALL {
        let k = laplace3d::build(2, 64, variant);
        oracle_matrix(&format!("laplace3d {}", variant.label()), &k, &DeviceArch::a100(), |dev| {
            laplace3d::Laplace3dDev::upload(dev, &w).args().to_vec()
        });
    }
}

#[test]
fn batched_kernel_engines_agree() {
    let w = batched::BatchedWorkload::generate(4, 8, 8);
    for mode in [
        batched::DispatchMode::Cascade,
        batched::DispatchMode::Extern,
        batched::DispatchMode::Mixed,
    ] {
        let k = batched::build(2, 64, 8, w.n_bodies, mode);
        oracle_matrix(&format!("batched {mode:?}"), &k, &DeviceArch::a100(), |dev| {
            batched::BatchedDev::upload(dev, &w).args().to_vec()
        });
    }
}

#[test]
fn spmv_kernels_engines_agree() {
    let mat = CsrMatrix::generate(96, 128, RowProfile::Banded { min: 4, max: 24 }, 11);
    let x: Vec<f64> = (0..mat.ncols).map(|i| ((i * 7) % 13) as f64 * 0.25).collect();
    let kernels = [
        ("two-level", spmv::build_two_level(8)),
        ("three-level", spmv::build_three_level(8, 64, 8)),
        ("three-level-reduce", spmv::build_three_level_reduce(8, 64, 8)),
    ];
    for (name, k) in &kernels {
        oracle_matrix(&format!("spmv {name}"), k, &DeviceArch::a100(), |dev| {
            spmv::SpmvDev::upload(dev, &mat, &x).args().to_vec()
        });
    }
}

#[test]
fn amd_sequential_fallback_engines_agree() {
    // mi100 has no independent warp scheduling: generic-mode simd loops
    // take the sequential fallback (§5.4.1) — replicated by the bytecode
    // engine counter for counter.
    let w = ideal::IdealWorkload::generate(24, 3);
    let k = ideal::build_forced_generic(2, 64, 8);
    oracle_matrix("ideal on mi100", &k, &DeviceArch::mi100(), |dev| {
        ideal::IdealDev::upload(dev, &w).args().to_vec()
    });
}

#[test]
fn random_plans_engines_agree() {
    // Plans come from the shared seeded generator
    // (`omp_kernels::plangen`), whose kernels are deterministic under
    // parallel block execution — the property the oracle needs.
    cases("random_plans_engines_agree", 40, |rng| {
        let (k, arch) = random_kernel(rng);
        let sim_threads = if rng.flip() { 1 } else { 4 };
        let sanitize = rng.range_u32(0, 4) == 0;
        let mut dev = Device::new(arch);
        dev.set_sim_threads(Some(sim_threads));
        if sanitize {
            dev.enable_sanitizer();
        }
        let out = dev.global.alloc_zeroed::<f64>(plangen::OUT_SLOTS);
        let tbl = dev.global.alloc_from(&[rng.range_u64(0, 7), rng.range_u64(1, 9)]);
        let n = rng.range_u64(1, 7);
        let args = [Slot::from_ptr(out), Slot::from_ptr(tbl), Slot::from_u64(n)];
        k.launch_oracle(&mut dev, &args).unwrap();
    });
}
